"""Unit tests for the Reed-Solomon codec."""

import itertools

import numpy as np
import pytest

from repro.codes import RSCode
from repro.gf import gf4, gf16


def _random_data(k, blen, seed=0):
    return np.random.default_rng(seed).integers(0, 256, (k, blen)).astype(np.uint8)


def test_encode_shape():
    code = RSCode(6, 3)
    stripe = code.encode(_random_data(6, 64))
    assert stripe.parity.shape == (3, 64)


def test_encode_wrong_shape_raises():
    with pytest.raises(ValueError):
        RSCode(4, 2).encode(np.zeros((3, 16), np.uint8))


def test_bad_params():
    with pytest.raises(ValueError):
        RSCode(0, 2)
    with pytest.raises(ValueError):
        RSCode(4, 0)
    with pytest.raises(ValueError):
        RSCode(200, 100)  # k+m > 256
    with pytest.raises(ValueError):
        RSCode(4, 2, matrix="bogus")


def test_systematic():
    """Data blocks are not transformed (identity top of generator)."""
    code = RSCode(5, 2)
    data = _random_data(5, 32)
    stripe = code.encode(data)
    assert stripe.data is data or np.array_equal(stripe.data, data)


@pytest.mark.parametrize("matrix", ["vandermonde", "cauchy"])
@pytest.mark.parametrize("k,m", [(2, 1), (4, 2), (12, 4), (28, 4)])
def test_decode_all_data_erasure_patterns(k, m, matrix):
    code = RSCode(k, m, matrix=matrix)
    data = _random_data(k, 16, seed=k * m)
    stripe = code.encode(data)
    rng = np.random.default_rng(7)
    # Erase m random blocks (several patterns) and recover.
    for _ in range(6):
        erased = sorted(rng.choice(k + m, size=m, replace=False).tolist())
        survivors = stripe.erase(erased)
        out = code.decode(survivors, erased)
        all_blocks = stripe.blocks()
        for e in erased:
            assert np.array_equal(out[e], all_blocks[e]), (erased, e)


def test_decode_exhaustive_small_code():
    code = RSCode(3, 2)
    data = _random_data(3, 8, seed=42)
    stripe = code.encode(data)
    all_blocks = stripe.blocks()
    for r in (1, 2):
        for erased in itertools.combinations(range(5), r):
            out = code.decode(stripe.erase(erased), list(erased))
            for e in erased:
                assert np.array_equal(out[e], all_blocks[e])


def test_decode_too_many_erasures():
    code = RSCode(4, 2)
    stripe = code.encode(_random_data(4, 8))
    with pytest.raises(ValueError, match="cannot repair"):
        code.decode(stripe.erase([0, 1, 2]), [0, 1, 2])


def test_decode_insufficient_survivors():
    code = RSCode(4, 2)
    stripe = code.encode(_random_data(4, 8))
    survivors = stripe.erase([0, 1])
    survivors.pop(2)
    with pytest.raises(ValueError, match="at least k"):
        code.decode(survivors, [0, 1])


def test_decode_with_parity_survivor_subset():
    """Decoder must work when it is handed more than k survivors."""
    code = RSCode(4, 3)
    data = _random_data(4, 8, seed=9)
    stripe = code.encode(data)
    out = code.decode(stripe.erase([1]), [1])
    assert np.array_equal(out[1], data[1])


def test_update_parity_matches_reencode():
    code = RSCode(6, 3)
    data = _random_data(6, 32, seed=1)
    stripe = code.encode(data)
    new_block = _random_data(1, 32, seed=2)[0]
    updated = code.update_parity(stripe.parity, 2, data[2], new_block)
    data2 = data.copy()
    data2[2] = new_block
    assert np.array_equal(updated, code.encode(data2).parity)


def test_update_parity_bad_index():
    code = RSCode(4, 2)
    with pytest.raises(IndexError):
        code.update_parity(np.zeros((2, 8), np.uint8), 4,
                           np.zeros(8, np.uint8), np.zeros(8, np.uint8))


def test_other_fields():
    for field, k, m in [(gf4, 3, 2), (gf16, 12, 4)]:
        code = RSCode(k, m, field=field)
        rng = np.random.default_rng(3)
        data = rng.integers(0, field.order, (k, 16)).astype(field.dtype)
        stripe = code.encode(data)
        erased = list(range(m))
        out = code.decode(stripe.erase(erased), erased)
        for e in erased:
            assert np.array_equal(out[e], data[e])


def test_gf4_parameter_bound():
    with pytest.raises(ValueError):
        RSCode(14, 4, field=gf4)  # 18 > 16


def test_decode_matrix_rows_for_parity_erasure():
    code = RSCode(4, 2)
    data = _random_data(4, 8, seed=5)
    stripe = code.encode(data)
    out = code.decode(stripe.erase([4]), [4])
    assert np.array_equal(out[4], stripe.parity[0])
