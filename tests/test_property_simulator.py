"""Property-based tests: simulator invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import HillClimber, eq1_max_distance, static_shuffle_mapping
from repro.core.operator import verify_shuffle_defeats_streamer
from repro.simulator import Counters, HardwareConfig, PMReadBuffer, StreamPrefetcher, run_single
from repro.simulator.params import PMConfig, PrefetcherConfig
from repro.trace.layout import StripeLayout
from repro.trace.ops import LOAD, COMPUTE, Trace

HW = HardwareConfig()


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=200))
@settings(max_examples=30, deadline=None)
def test_prefetcher_never_prefetches_backwards_or_past_page(lines):
    """Issued prefetch addresses are always ahead of the trigger and
    inside its 4 KB page."""
    pf = StreamPrefetcher(PrefetcherConfig(), Counters())
    for line in lines:
        addr = line * 64
        for target in pf.on_access(addr):
            assert target > addr
            assert target // 4096 == addr // 4096


@given(st.lists(st.integers(min_value=0, max_value=4096), min_size=1,
                max_size=300),
       st.integers(min_value=1, max_value=32))
@settings(max_examples=30, deadline=None)
def test_readbuffer_never_exceeds_capacity(addrs, cap):
    c = Counters()
    rb = PMReadBuffer(cap, 256, c)
    for a in addrs:
        if not rb.access(a * 64):
            rb.fill(a * 64)
        assert len(rb) <= cap
    # conservation: every miss either filled or was already resident
    assert c.buffer_hits + c.buffer_misses == len(addrs)


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 255)),
                min_size=1, max_size=120))
@settings(max_examples=25, deadline=None)
def test_engine_clock_monotonic_and_counters_consistent(ops_spec):
    """Simulated time advances; traffic counters account every load."""
    ops = []
    for kind, v in ops_spec:
        if kind == 0:
            ops.append((LOAD, v * 64))
        else:
            ops.append((COMPUTE, float(v)))
    finish, c = run_single(Trace(ops=ops), HW)
    assert finish >= 0
    nloads = sum(1 for op, _ in ops if op == LOAD)
    assert c.loads == nloads
    assert c.load_cache_hits + c.load_late_prefetch + c.load_misses \
        + c.hwpf_useful - c.load_cache_hits <= c.loads + c.hwpf_issued
    # every app byte seen at the controller at least when missed
    assert c.app_read_bytes == 64 * nloads
    assert c.ctrl_read_bytes % 64 == 0
    assert c.media_read_bytes % 256 == 0
    # the buffer can't hit more often than there are loads+prefetches
    assert c.buffer_hits + c.buffer_misses <= nloads + c.hwpf_issued + c.swpf_issued


@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=160),
       st.integers(min_value=1, max_value=8))
def test_eq1_cap_respects_buffer_budget(nthreads, k, m):
    pm = PMConfig()
    d = eq1_max_distance(nthreads, k, m, pm)
    assert d >= 1
    if d > 1:
        used = nthreads * k * pm.xpline_bytes * -(-d // k)
        assert used <= pm.read_buffer_kb * 1024 or d == k * 0 + 1


@given(st.integers(min_value=5, max_value=512))
def test_shuffle_mapping_is_permutation_and_non_sequential(lines):
    order = static_shuffle_mapping(lines)
    assert sorted(order) == list(range(lines))
    assert verify_shuffle_defeats_streamer(order)


@given(st.integers(min_value=1, max_value=100),
       st.integers(min_value=0, max_value=200))
@settings(max_examples=40)
def test_hillclimber_finds_global_minimum_of_convex(target, start):
    hc = HillClimber(lambda x: abs(x - target), lower=1, upper=200)
    best, val = hc.search(max(1, start))
    assert best == max(1, min(target, 200))
    assert val == abs(best - target)


@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=8),
       st.sampled_from([256, 512, 1024, 4096, 5120]),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=40)
def test_layout_blocks_never_overlap(k, m, bs, stripes):
    lay = StripeLayout(k, m, bs)
    regions = []
    for s in range(stripes + 1):
        for b in range(k + m):
            base = lay.block_addr(s, b)
            regions.append((base, base + bs))
    regions.sort()
    for (s1, e1), (s2, _) in zip(regions, regions[1:]):
        assert e1 <= s2
