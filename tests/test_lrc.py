"""Unit tests for the LRC codec."""

import numpy as np
import pytest

from repro.codes import LRCCode


def _data(k, blen=32, seed=0):
    return np.random.default_rng(seed).integers(0, 256, (k, blen)).astype(np.uint8)


def test_params_validation():
    with pytest.raises(ValueError):
        LRCCode(6, 2, 4)  # k % l != 0
    with pytest.raises(ValueError):
        LRCCode(6, 2, 0)
    with pytest.raises(ValueError):
        LRCCode(6, 2, 7)


def test_layout_helpers():
    code = LRCCode(8, 2, 2)
    assert code.total_blocks == 12
    assert code.group_of(0) == 0
    assert code.group_of(7) == 1
    assert code.group_members(1) == [4, 5, 6, 7]
    with pytest.raises(IndexError):
        code.group_of(8)
    with pytest.raises(IndexError):
        code.group_members(2)


def test_encode_shapes_and_local_parity():
    code = LRCCode(6, 2, 3)
    data = _data(6)
    gp, lp = code.encode(data)
    assert gp.shape == (2, 32)
    assert lp.shape == (3, 32)
    for g in range(3):
        want = np.bitwise_xor.reduce(data[code.group_members(g)], axis=0)
        assert np.array_equal(lp[g], want)


def test_global_parity_matches_rs():
    code = LRCCode(6, 2, 3)
    data = _data(6, seed=1)
    gp, _ = code.encode(data)
    assert np.array_equal(gp, code.rs.encode_blocks(data))


def _full_stripe(code, data):
    gp, lp = code.encode(data)
    blocks = {i: data[i] for i in range(code.k)}
    blocks.update({code.k + i: gp[i] for i in range(code.m)})
    blocks.update({code.k + code.m + i: lp[i] for i in range(code.l)})
    return blocks


def test_repair_local_single_erasure():
    code = LRCCode(8, 2, 2)
    data = _data(8, seed=2)
    blocks = _full_stripe(code, data)
    victim = 5
    avail = {i: b for i, b in blocks.items() if i != victim}
    got = code.repair_local(code.group_of(victim), avail)
    assert np.array_equal(got, data[victim])


def test_repair_local_needs_parity():
    code = LRCCode(4, 2, 2)
    data = _data(4, seed=3)
    blocks = _full_stripe(code, data)
    avail = {i: b for i, b in blocks.items() if i not in (0, code.k + code.m)}
    with pytest.raises(ValueError, match="local parity"):
        code.repair_local(0, avail)


def test_repair_local_wrong_erasure_count():
    code = LRCCode(4, 2, 2)
    data = _data(4, seed=4)
    blocks = _full_stripe(code, data)
    avail = {i: b for i, b in blocks.items() if i not in (0, 1)}
    with pytest.raises(ValueError, match="exactly one"):
        code.repair_local(0, avail)


def test_decode_prefers_local():
    code = LRCCode(8, 2, 2)
    data = _data(8, seed=5)
    blocks = _full_stripe(code, data)
    avail = {i: b for i, b in blocks.items() if i != 3}
    out = code.decode(avail, [3])
    assert np.array_equal(out[3], data[3])


def test_decode_global_fallback_two_in_group():
    code = LRCCode(8, 2, 2)
    data = _data(8, seed=6)
    blocks = _full_stripe(code, data)
    erased = [0, 1]  # both in group 0 -> local repair impossible
    avail = {i: b for i, b in blocks.items() if i not in erased}
    out = code.decode(avail, erased)
    for e in erased:
        assert np.array_equal(out[e], data[e])


def test_decode_erased_global_parity():
    code = LRCCode(6, 2, 3)
    data = _data(6, seed=7)
    blocks = _full_stripe(code, data)
    e = code.k  # first global parity
    avail = {i: b for i, b in blocks.items() if i != e}
    out = code.decode(avail, [e])
    assert np.array_equal(out[e], blocks[e])


def test_decode_erased_local_parity():
    code = LRCCode(6, 2, 3)
    data = _data(6, seed=8)
    blocks = _full_stripe(code, data)
    e = code.k + code.m + 1
    avail = {i: b for i, b in blocks.items() if i != e}
    out = code.decode(avail, [e])
    assert np.array_equal(out[e], blocks[e])


def test_decode_mixed_erasures():
    code = LRCCode(8, 2, 2)
    data = _data(8, seed=9)
    blocks = _full_stripe(code, data)
    erased = [2, 6, code.k + code.m]  # one per group (local) + a local parity
    avail = {i: b for i, b in blocks.items() if i not in erased}
    out = code.decode(avail, erased)
    for e in erased:
        assert np.array_equal(out[e], blocks[e])
