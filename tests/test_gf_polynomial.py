"""Unit tests for GF polynomials."""

import numpy as np
import pytest

from repro.gf import GFPolynomial, gf8


def test_eval_constant():
    p = GFPolynomial(gf8, [7])
    assert p(0) == 7
    assert p(200) == 7


def test_eval_linear():
    # p(x) = 3x + 5
    p = GFPolynomial(gf8, [5, 3])
    for x in [0, 1, 2, 100]:
        assert p(x) == gf8.add(gf8.mul(3, x), 5)


def test_eval_vectorized_matches_scalar():
    p = GFPolynomial(gf8, [1, 2, 3, 4])
    xs = np.arange(32, dtype=np.uint8)
    vec = p(xs)
    assert np.array_equal(vec, np.array([p(int(x)) for x in xs], dtype=np.uint8))


def test_trailing_zeros_trimmed():
    p = GFPolynomial(gf8, [1, 2, 0, 0])
    assert p.degree == 1


def test_zero_polynomial_degree():
    p = GFPolynomial(gf8, [0, 0])
    assert p.degree == 0
    assert p(5) == 0


def test_addition_is_coefficientwise_xor():
    a = GFPolynomial(gf8, [1, 2, 3])
    b = GFPolynomial(gf8, [4, 5])
    c = a + b
    assert list(c.coeffs) == [1 ^ 4, 2 ^ 5, 3]


def test_addition_cancels():
    a = GFPolynomial(gf8, [1, 2, 3])
    assert (a + a).degree == 0
    assert (a + a)(9) == 0


def test_multiplication_degree_and_eval():
    a = GFPolynomial(gf8, [1, 1])       # x + 1
    b = GFPolynomial(gf8, [2, 0, 1])    # x^2 + 2
    c = a * b
    assert c.degree == 3
    for x in [0, 1, 7, 255]:
        assert c(x) == gf8.mul(a(x), b(x))


def test_from_roots():
    roots = [3, 17, 99]
    p = GFPolynomial.from_roots(gf8, roots)
    assert p.degree == 3
    for r in roots:
        assert p(r) == 0
    assert p(4) != 0
    # Monic.
    assert p.coeffs[-1] == 1


def test_equality_and_hash():
    a = GFPolynomial(gf8, [1, 2])
    b = GFPolynomial(gf8, [1, 2, 0])
    assert a == b
    assert hash(a) == hash(b)
    assert a != GFPolynomial(gf8, [1, 3])
