"""Edge-case tests for the engine, multicore scheduler and backends."""

import pytest

from repro.simulator import (
    Counters, DRAMBackend, HardwareConfig, PMBackend, ThreadContext,
    run_single, simulate,
)
from repro.simulator.multicore import make_backends
from repro.trace.ops import COMPUTE, FENCE, LOAD, STORE, SWPF, Trace, op_name

HW = HardwareConfig()


def test_op_name_mapping():
    assert op_name(LOAD) == "LOAD"
    assert op_name(99) == "op99"


def test_trace_extend_accumulates():
    a = Trace(ops=[(LOAD, 0)], data_bytes=10)
    b = Trace(ops=[(STORE, 64)], data_bytes=5)
    a.extend(b)
    assert len(a) == 2 and a.data_bytes == 15
    assert a.counts() == {"LOAD": 1, "STORE": 1}


def test_store_backpressure_stalls():
    """A burst of NT stores beyond the WPQ horizon must stall the core."""
    hw = HW.with_pm(write_bw_gbps=0.05)  # pathologically slow writes
    ops = [(STORE, i * 64) for i in range(64)]
    finish, c = run_single(Trace(ops=ops), hw)
    assert c.store_stall_ns > 0
    assert finish > 64 * 64 / 0.05 * 0.5  # at least half the occupancy


def test_fence_on_dram_target():
    hw = HW.with_(store_target="dram")
    finish, c = run_single(Trace(ops=[(STORE, 0), (FENCE, 0)]), hw)
    assert finish >= 64 / hw.dram.write_bw_gbps


def test_fence_noop_without_stores():
    finish, _ = run_single(Trace(ops=[(FENCE, 0)]), HW)
    assert finish == 0.0


def test_swpf_to_cached_line_is_cheap():
    t = Trace(ops=[(LOAD, 0), (SWPF, 0)])
    _, c = run_single(t, HW)
    # one media fill only: the prefetch found the line resident
    assert c.media_read_bytes == 256


def test_context_reuse_across_simulate_calls():
    """The DIALGA chunking pattern: extend a live context and re-enter."""
    counters = Counters()
    load_b, store_b = make_backends(HW, counters)
    ctx = ThreadContext(HW, counters, load_b, store_b)
    ctx.trace.extend(Trace(ops=[(LOAD, i * 64) for i in range(8)],
                           data_bytes=512))
    r1 = simulate([], HW, contexts=[ctx], drain=False)
    clock1 = ctx.clock
    ctx.trace.extend(Trace(ops=[(LOAD, (100 + i) * 64) for i in range(8)],
                           data_bytes=512))
    r2 = simulate([], HW, contexts=[ctx])
    assert ctx.pc == 16
    assert r2.makespan_ns > clock1
    assert counters.loads == 16


def test_drain_flag_defers_useless_accounting():
    ops = [(SWPF, 4096)]  # prefetch never demanded
    counters = Counters()
    load_b, store_b = make_backends(HW, counters)
    ctx = ThreadContext(HW, counters, load_b, store_b,
                        trace=Trace(ops=list(ops)))
    simulate([], HW, contexts=[ctx], drain=False)
    assert counters.swpf_useless == 0
    ctx.cache.drain()
    assert counters.swpf_useless == 1


def test_threads_with_unequal_traces():
    t_short = Trace(ops=[(COMPUTE, 100.0)], data_bytes=1)
    t_long = Trace(ops=[(COMPUTE, 100.0)] * 50, data_bytes=1)
    res = simulate([t_short, t_long], HW)
    assert res.thread_times_ns[0] < res.thread_times_ns[1]
    assert res.makespan_ns == res.thread_times_ns[1]


def test_media_pipe_queueing_under_burst():
    """Concurrent cold misses from many threads queue at the media."""
    nt = 16
    traces = [Trace(ops=[(LOAD, ((t + 1) << 44) + i * 4096)
                         for i in range(16)])
              for t in range(nt)]
    res = simulate(traces, HW)
    per_thread_alone = simulate(
        [Trace(ops=[(LOAD, (1 << 44) + i * 4096) for i in range(16)])],
        HW).makespan_ns
    # shared bandwidth means slower than a lone thread
    assert res.makespan_ns > per_thread_alone


def test_backends_shared_iff_same_kind():
    counters = Counters()
    lb, sb = make_backends(HW, counters)
    assert lb is sb  # both "pm"
    lb2, sb2 = make_backends(HW.with_(load_source="dram"), counters)
    assert lb2 is not sb2
    assert isinstance(lb2, DRAMBackend) and isinstance(sb2, PMBackend)


def test_compute_scales_inversely_with_frequency():
    t = Trace(ops=[(COMPUTE, 1000.0)])
    slow, _ = run_single(Trace(ops=list(t.ops)), HW.with_cpu(freq_ghz=1.0))
    fast, _ = run_single(Trace(ops=list(t.ops)), HW.with_cpu(freq_ghz=2.0))
    assert slow == pytest.approx(2 * fast)


def test_cpu_simd_validation():
    with pytest.raises(ValueError):
        HW.with_cpu(simd="sse42").cpu.simd_factor


def test_simulate_with_all_done_contexts():
    counters = Counters()
    load_b, store_b = make_backends(HW, counters)
    ctx = ThreadContext(HW, counters, load_b, store_b, trace=Trace(ops=[]))
    res = simulate([], HW, contexts=[ctx])
    assert res.makespan_ns == 0.0


def test_counters_merge_full_roundtrip():
    a = Counters()
    a.loads, a.media_read_bytes, a.load_stall_ns = 5, 512, 100.0
    b = Counters()
    b.loads, b.media_read_bytes, b.load_stall_ns = 7, 256, 50.0
    a.merge(b)
    assert (a.loads, a.media_read_bytes, a.load_stall_ns) == (12, 768, 150.0)


def test_promoted_late_prefetch_never_worse_than_cold_miss():
    """The demand-promotion invariant: issuing a prefetch right before
    its load can't cost more than not prefetching at all (modulo the
    1-cycle issue overhead)."""
    addrs = [i * 4096 for i in range(32)]  # distinct XPLines, no buffer help
    cold_ops = [(LOAD, a) for a in addrs]
    pf_ops = []
    for a in addrs:
        pf_ops += [(SWPF, a), (LOAD, a)]
    hw = HW.with_prefetcher(enabled=False)
    cold, _ = run_single(Trace(ops=cold_ops), hw)
    pf, _ = run_single(Trace(ops=pf_ops), hw)
    issue_overhead = 32 * HW.cpu.swpf_issue_cycles / HW.cpu.freq_ghz
    assert pf <= cold + issue_overhead + 1.0
