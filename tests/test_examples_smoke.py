"""Smoke tests: the fast examples must run clean end to end.

The slower scenario scripts (wide-stripe archive, KV store, adaptive
demo) are exercised piecemeal by the integration tests; these two run
whole as subprocesses so the documented entry points can never rot.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart_example():
    out = _run("quickstart.py")
    assert "repair OK" in out
    assert "DIALGA policy" in out


def test_service_traffic_demo_example():
    out = _run("service_traffic_demo.py")
    assert "Eq. (1) admission cap: 24 concurrent" in out
    assert "0 failed: True" in out
    # The closing snapshot renders in Prometheus exposition format.
    assert "# TYPE repro_service_completed_total counter" in out
    assert 'repro_service_latency_ns{op="put",quantile="0.5"}' in out


def test_trace_explorer_demo_example():
    out = _run("trace_explorer_demo.py")
    assert "span tree (truncated):" in out
    assert "coordinator decision log:" in out
    assert "switch:" in out          # a live policy switch was traced
    assert "service request stages" in out


def test_chaos_campaign_demo_example():
    out = _run("chaos_campaign_demo.py")
    assert "durability CLEAN" in out
    assert "kitchen_sink" in out
    assert "no acknowledged byte was lost" in out


def test_decision_audit_demo_example():
    out = _run("decision_audit_demo.py")
    assert "SWITCH" in out
    assert "oracle-normalized score" in out
    assert "inefficient-prefetcher-grade" in out
    assert "trajectory gated" in out


def test_fault_tolerance_drill_example():
    out = _run("fault_tolerance_drill.py")
    assert "24/24 objects bit-exact" in out
    assert "unrepairable stripes none" in out


@pytest.mark.parametrize("name", [
    "pm_kv_store_protection.py",
    "wide_stripe_archive.py",
    "adaptive_tuning_demo.py",
    "production_workloads_tour.py",
])
def test_other_examples_compile(name):
    """The slower examples at least parse and import cleanly."""
    src = (EXAMPLES / name).read_text()
    compile(src, name, "exec")
