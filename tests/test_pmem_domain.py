"""The persistence-domain model and the stripe WAL, in isolation."""

import numpy as np
import pytest

from repro.pmstore import (
    ATOM_BYTES,
    PersistenceDomain,
    PersistenceDomainFull,
    StripeWAL,
    TxIntent,
    WALFull,
    drop_unfenced,
    keep_flushed,
    seeded_line_policy,
)
from repro.pmstore.wal import OP_PUT


# -- durability semantics ----------------------------------------------------


def test_write_visible_immediately_but_not_durable():
    dom = PersistenceDomain(4096)
    dom.write(0, b"hello")
    assert dom.view(0, 5).tobytes() == b"hello"  # store-to-load forwarding
    assert dom.pending_lines == 1
    dom.crash()
    assert dom.view(0, 5).tobytes() == b"\x00" * 5  # dropped


def test_flush_alone_is_not_durable_fence_is():
    dom = PersistenceDomain(4096)
    dom.write(0, b"abc")
    dom.flush(0, 3)
    other = PersistenceDomain(4096)
    other.write(0, b"abc")
    other.flush(0, 3)
    other.fence()
    dom.crash()        # default: flushed-but-unfenced still dropped
    other.crash()
    assert dom.view(0, 3).tobytes() == b"\x00\x00\x00"
    assert other.view(0, 3).tobytes() == b"abc"


def test_keep_flushed_policy_keeps_flushed_drops_dirty():
    dom = PersistenceDomain(4096)
    dom.write(0, b"AA")        # line 0, flushed below
    dom.write(256, b"BB")      # line 1, never flushed
    dom.flush(0, 2)
    dom.crash(keep_flushed)
    assert dom.view(0, 2).tobytes() == b"AA"
    assert dom.view(256, 2).tobytes() == b"\x00\x00"


def test_rewrite_of_flushed_line_dirties_it_again():
    dom = PersistenceDomain(4096)
    dom.write(0, b"one")
    dom.flush(0, 3)
    dom.write(1, b"X")   # same line, after the clwb
    dom.crash(keep_flushed)
    # the earlier clwb covered the earlier content only: line dropped
    assert dom.view(0, 3).tobytes() == b"\x00\x00\x00"


def test_fence_drops_rollback_images_permanently():
    dom = PersistenceDomain(4096)
    dom.write(0, b"abc")
    dom.persist(0, 3)
    assert dom.pending_lines == 0
    dom.write(0, b"xyz")   # new epoch: snapshot is the durable "abc"
    dom.crash()
    assert dom.view(0, 3).tobytes() == b"abc"


def test_tear_policy_splits_at_atom_boundary_deterministically():
    damaged = []
    for _ in range(2):
        dom = PersistenceDomain(4096)
        base = bytes(range(64)) * 4
        dom.write(0, base)
        dom.persist(0, 256)
        dom.write(0, bytes(255 - b for b in base))
        n = dom.crash(seeded_line_policy(np.random.default_rng(7)))
        damaged.append((n, dom.view(0, 256).tobytes()))
    assert damaged[0] == damaged[1]  # same seed, same outcome
    content = damaged[0][1]
    if content not in (base, bytes(255 - b for b in base)):
        # torn: new prefix + old suffix, cut on an 8 B boundary
        cuts = [i for i in range(0, 257, ATOM_BYTES)
                if content[:i] == bytes(255 - b for b in base)[:i]
                and content[i:] == base[i:]]
        assert cuts


def test_crash_returns_damage_count_and_clears_pending():
    dom = PersistenceDomain(4096)
    dom.write(0, b"a")
    dom.write(256, b"b")
    dom.write(512, b"c")
    dom.persist(512, 1)
    assert dom.crash() == 2
    assert dom.pending_lines == 0


# -- persist hooks (the crash-point boundaries) ------------------------------


def test_hooks_fire_per_flushed_line_and_per_fence():
    dom = PersistenceDomain(4096)
    fired = []
    dom.persist_hooks.append(lambda kind, line: fired.append((kind, line)))
    dom.write(0, b"x" * 300)   # spans lines 0 and 1
    dom.persist(0, 300)
    assert fired == [("flush", 0), ("flush", 1), ("fence", -1)]


def test_hook_raising_models_power_cut_before_the_op():
    class Cut(Exception):
        pass

    dom = PersistenceDomain(4096)

    def cut(kind, line):
        raise Cut

    dom.write(0, b"zz")
    dom.persist_hooks.append(cut)
    with pytest.raises(Cut):
        dom.flush(0, 2)
    dom.persist_hooks.clear()
    # the flush never happened: line still dirty, a crash drops it
    dom.crash()
    assert dom.view(0, 2).tobytes() == b"\x00\x00"


# -- allocation --------------------------------------------------------------


def test_allocate_is_line_aligned_and_bounded():
    dom = PersistenceDomain(1024, line_bytes=256)
    assert dom.allocate(1) == 0
    assert dom.allocate(300) == 256   # aligned up
    assert dom.allocated_bytes == 256 + 512
    with pytest.raises(PersistenceDomainFull):
        dom.allocate(512)
    dom.reset_allocator(256)
    assert dom.allocate(256) == 256


def test_state_digest_covers_allocated_region_only():
    dom = PersistenceDomain(4096)
    dom.allocate(256)
    d0 = dom.state_digest()
    dom.write(0, b"q")
    assert dom.state_digest() != d0
    dom.write(2048, b"q")          # beyond the watermark: not hashed
    assert dom.view(2048, 1).tobytes() == b"q"
    d1 = dom.state_digest()
    dom.crash()                    # drops both writes
    assert dom.state_digest() == d0 != d1


# -- the stripe WAL ----------------------------------------------------------


def _intent(txid, key="k", payload=b"pay", parity=b"par",
            checksums=(1, 2, 3)):
    return TxIntent(txid=txid, op=OP_PUT, key=key, sid=0, new_stripe=True,
                    stripe_addr=0, offset=0, length=len(payload),
                    used_after=len(payload), payload=payload, parity=parity,
                    checksums=checksums)


def test_wal_roundtrip_intent_and_commit():
    wal = StripeWAL(capacity_bytes=1 << 16)
    tx = _intent(wal.begin_txid(), key="obj/1", payload=b"\x01" * 100)
    wal.log_intent(tx)
    wal.log_commit(tx.txid, tx.op)
    intents, committed, scanned = wal.scan()
    assert intents == [tx]
    assert committed == {tx.txid}
    assert scanned == wal.bytes_logged
    assert wal.begin_txid() == tx.txid + 1  # scan resets the counter


def test_wal_scan_stops_at_torn_tail_record():
    wal = StripeWAL(capacity_bytes=1 << 16)
    t1 = _intent(wal.begin_txid())
    wal.log_intent(t1)
    wal.log_commit(t1.txid)
    # a second intent whose append is cut before its fence: the crash
    # drops every line of the record
    t2 = _intent(wal.begin_txid(), payload=b"\x02" * 500)
    head = wal.bytes_logged
    wal.domain.persist_hooks.append(
        lambda kind, line: (_ for _ in ()).throw(RuntimeError("cut")))
    with pytest.raises(RuntimeError):
        wal.log_intent(t2)
    wal.domain.persist_hooks.clear()
    wal.domain.crash()
    intents, committed, scanned = wal.scan()
    assert intents == [t1]
    assert committed == {t1.txid}
    assert scanned == head


def test_wal_scan_rejects_corrupt_crc():
    wal = StripeWAL(capacity_bytes=1 << 16)
    t1 = _intent(wal.begin_txid())
    wal.log_intent(t1)
    # corrupt one payload byte in place (media corruption on the log)
    wal.domain.memory[40] ^= 0xFF
    intents, _, scanned = wal.scan()
    assert intents == []
    assert scanned == 0


def test_wal_full_is_reported():
    wal = StripeWAL(capacity_bytes=512)
    with pytest.raises(WALFull):
        for _ in range(10):
            tx = _intent(wal.begin_txid(), payload=b"\x00" * 100)
            wal.log_intent(tx)
