"""Integration tests: cross-module pipelines, end to end.

These exercise the exact paths the benchmarks and examples use —
functional coding plus performance simulation plus adaptation —
at reduced volume so the suite stays fast.
"""

import numpy as np
import pytest

from repro import (
    Cerasure, DialgaEncoder, HardwareConfig, ISAL, ISALDecompose,
    LRCCode, RSCode, Workload, Zerasure,
)
from repro.bench.figures import fig03, fig05
from repro.codes import join_blocks, split_blocks
from repro.simulator import get_preset, perf_report
from repro.trace import validate_isal_trace

HW = HardwareConfig()


def test_full_storage_pipeline_rs():
    """bytes -> stripe -> encode -> corrupt -> decode -> bytes."""
    payload = bytes(range(256)) * 37
    k, m = 10, 4
    code = RSCode(k, m)
    data = split_blocks(payload, k)
    stripe = code.encode(data)
    rng = np.random.default_rng(0)
    for trial in range(5):
        erased = sorted(rng.choice(k + m, size=m, replace=False).tolist())
        out = code.decode(stripe.erase(erased), erased)
        repaired = stripe.blocks().copy()
        for e in erased:
            repaired[e] = out[e]
        assert join_blocks(repaired[:k], len(payload)) == payload


def test_all_libraries_full_pipeline_same_workload():
    """Every compared system encodes, decodes, and simulates one workload."""
    k, m = 8, 4
    wl = Workload(k=k, m=m, block_bytes=1024, data_bytes_per_thread=32 * 1024)
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, (k, 1024)).astype(np.uint8)
    throughputs = {}
    for lib in (ISAL(k, m), ISALDecompose(k, m, group_size=4),
                Zerasure(k, m), Cerasure(k, m),
                DialgaEncoder(k, m, use_probe=False)):
        parity = lib.encode(data)
        blocks = {i: data[i] for i in range(k)}
        blocks.update({k + i: parity[i] for i in range(m)})
        erased = [0, k + 1]
        out = lib.decode({i: b for i, b in blocks.items() if i not in erased},
                         erased)
        for e in erased:
            assert np.array_equal(out[e], blocks[e]), lib.name
        throughputs[lib.name] = lib.run(wl, HW).throughput_gbps
    # the paper's ordering on PM at 1KB blocks
    assert throughputs["DIALGA"] > throughputs["ISA-L"]
    assert throughputs["ISA-L"] > throughputs["Zerasure"]
    assert throughputs["ISA-L"] > throughputs["Cerasure"]


def test_dialga_traces_validate_for_every_policy_it_produces():
    """Whatever the coordinator decides must be a structurally valid trace."""
    for nthreads in (1, 16):
        for k in (6, 48):
            wl = Workload(k=k, m=4, block_bytes=1024, nthreads=nthreads,
                          data_bytes_per_thread=12 * 1024)
            enc = DialgaEncoder(k, 4, use_probe=False)
            enc.run(wl, HW)
            for pol in enc.policy_log:
                trace = enc.trace(wl, HW, thread=0, policy=pol)
                validate_isal_trace(trace, wl)


def test_adaptive_run_matches_nonadaptive_when_stable():
    """With stable pressure the adaptive path shouldn't lose to the
    pinned initial policy by more than chunking noise."""
    wl = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=64 * 1024)
    adaptive = DialgaEncoder(8, 4, use_probe=False, chunks=4).run(wl, HW)
    pinned = DialgaEncoder(8, 4, use_probe=False, adaptive=False).run(wl, HW)
    ratio = adaptive.throughput_gbps / pinned.throughput_gbps
    assert 0.9 <= ratio <= 1.1, ratio


def test_figures_accept_volume_override():
    """Every figure runs at tiny volume (the CI fast path)."""
    r3 = fig03(volume=16 * 1024)
    assert len(r3.rows) == 4
    r5 = fig05(volume=32 * 1024)
    assert r5.value("k=36", "throughput_gbps") < r5.value("k=32", "throughput_gbps")


def test_preset_pipeline_with_profiler():
    wl = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=16 * 1024)
    for preset in ("cascade_lake_optane", "cxl_cmmh"):
        hw = get_preset(preset)
        res = ISAL(8, 4).run(wl, hw)
        report = perf_report(res.sim, hw, title=preset)
        assert preset in report
        assert res.sim.counters.media_read_bytes > 0


def test_simulation_is_deterministic():
    wl = Workload(k=8, m=4, block_bytes=1024, nthreads=4,
                  data_bytes_per_thread=16 * 1024)
    a = ISAL(8, 4).run(wl, HW)
    b = ISAL(8, 4).run(wl, HW)
    assert a.sim.makespan_ns == b.sim.makespan_ns
    assert a.sim.counters.media_read_bytes == b.sim.counters.media_read_bytes
    enc1 = DialgaEncoder(8, 4)
    enc2 = DialgaEncoder(8, 4)
    r1 = enc1.run(wl, HW)
    r2 = enc2.run(wl, HW)
    assert r1.sim.makespan_ns == r2.sim.makespan_ns
    assert enc1.policy_log == enc2.policy_log


def test_decode_after_simulated_degraded_read():
    """The Fig. 14 path: decode workload simulation + functional decode
    agree on what is being rebuilt."""
    k, m, er = 8, 4, 3
    wl = Workload(k=k, m=m, op="decode", erasures=er, block_bytes=1024,
                  data_bytes_per_thread=16 * 1024)
    lib = DialgaEncoder(k, m, use_probe=False)
    res = lib.run(wl, HW)
    # stores per stripe == erasures * lines
    stripes = wl.stripes_per_thread
    assert res.sim.counters.stores == stripes * 16 * er
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, (k, 1024)).astype(np.uint8)
    parity = lib.encode(data)
    blocks = {i: data[i] for i in range(k)}
    blocks.update({k + i: parity[i] for i in range(m)})
    erased = list(range(er))
    out = lib.decode({i: b for i, b in blocks.items() if i not in erased},
                     erased)
    for e in erased:
        assert np.array_equal(out[e], blocks[e])
