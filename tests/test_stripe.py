"""Unit tests for stripe/block layout helpers."""

import numpy as np
import pytest

from repro.codes import Stripe, split_blocks, join_blocks


def test_split_exact():
    data = bytes(range(12))
    blocks = split_blocks(data, 4)
    assert blocks.shape == (4, 3)
    assert blocks[1, 0] == 3


def test_split_pads():
    blocks = split_blocks(bytes(10), 4)
    assert blocks.shape == (4, 3)


def test_split_no_pad_raises():
    with pytest.raises(ValueError):
        split_blocks(bytes(10), 4, pad=False)


def test_split_returns_view_when_possible():
    arr = np.arange(12, dtype=np.uint8)
    blocks = split_blocks(arr, 3)
    assert blocks.base is not None  # a view, not a copy


def test_join_roundtrip():
    payload = bytes(range(100))
    blocks = split_blocks(payload, 8)
    assert join_blocks(blocks, length=100) == payload


def test_stripe_properties():
    s = Stripe(data=np.zeros((4, 16), np.uint8), parity=np.ones((2, 16), np.uint8))
    assert (s.k, s.m, s.block_len) == (4, 2, 16)
    assert s.blocks().shape == (6, 16)


def test_stripe_shape_validation():
    with pytest.raises(ValueError):
        Stripe(data=np.zeros((4, 16), np.uint8), parity=np.zeros((2, 8), np.uint8))
    with pytest.raises(ValueError):
        Stripe(data=np.zeros(16, np.uint8), parity=np.zeros((2, 8), np.uint8))


def test_stripe_erase():
    s = Stripe(data=np.arange(8, dtype=np.uint8).reshape(2, 4),
               parity=np.zeros((1, 4), np.uint8))
    surv = s.erase([1])
    assert sorted(surv) == [0, 2]
    assert np.array_equal(surv[0], s.data[0])
