"""Tests for hardware presets and the perf-style profiler."""

import pytest

from repro import Workload
from repro.simulator import PRESETS, get_preset, perf_report, simulate
from repro.simulator.params import HardwareConfig
from repro.simulator.presets import cxl_cmmh, dram_only, icelake_optane
from repro.trace import IsalVariant, isal_trace


def test_all_presets_construct():
    for name in PRESETS:
        hw = get_preset(name)
        assert isinstance(hw, HardwareConfig)


def test_unknown_preset():
    with pytest.raises(KeyError, match="available"):
        get_preset("skylake")


def test_default_preset_is_paper_testbed():
    hw = get_preset("cascade_lake_optane")
    assert hw.prefetcher.max_streams == 32
    assert hw.pm.read_buffer_kb == 96
    assert hw.cpu.freq_ghz == 3.3


def test_icelake_streamer_capacity():
    assert icelake_optane().prefetcher.max_streams == 64


def test_cmmh_granularity_larger():
    hw = cxl_cmmh()
    assert hw.pm.xpline_bytes > 256
    assert hw.pm.media_latency_ns > HardwareConfig().pm.media_latency_ns


def test_dram_only_routes_loads_and_stores():
    hw = dram_only()
    assert hw.load_source == "dram" and hw.store_target == "dram"


def _small_result(hw=None):
    hw = hw or HardwareConfig()
    wl = Workload(k=4, m=2, block_bytes=1024, data_bytes_per_thread=16 * 1024)
    trace = isal_trace(wl, hw.cpu, IsalVariant(sw_prefetch_distance=4))
    return simulate([trace], hw), hw


def test_perf_report_contains_key_sections():
    res, hw = _small_result()
    report = perf_report(res, hw, title="unit test")
    for needle in ("Performance counter stats for 'unit test'",
                   "cycles", "loads", "hw prefetches issued",
                   "sw prefetches issued", "PM media bytes read",
                   "GB/s over 1 thread(s)"):
        assert needle in report, needle


def test_perf_report_numbers_consistent():
    res, hw = _small_result()
    report = perf_report(res, hw)
    assert f"{res.counters.loads:,.0f}" in report.replace("  ", " ") or \
        f"{res.counters.loads:,}" in report


def test_perf_report_zero_division_safe():
    from repro.simulator.multicore import SimResult
    from repro.simulator import Counters
    empty = SimResult(makespan_ns=1.0, thread_times_ns=[1.0],
                      counters=Counters(), data_bytes=0)
    report = perf_report(empty)
    assert "loads" in report


def test_presets_run_end_to_end():
    for name in PRESETS:
        res, _ = _small_result(get_preset(name))
        assert res.makespan_ns > 0


def test_perf_report_multithread_thread_count():
    from repro.trace import Workload, isal_trace, IsalVariant
    hw = HardwareConfig()
    wl = Workload(k=4, m=2, block_bytes=1024, nthreads=3,
                  data_bytes_per_thread=8 * 1024)
    traces = [isal_trace(wl, hw.cpu, IsalVariant(), thread=t)
              for t in range(3)]
    res = simulate(traces, hw)
    assert "3 thread(s)" in perf_report(res, hw)


# -- compare-section threshold boundaries ----------------------------------

def _synthetic(avg_lat_ns: float, useless: int = 0, loads: int = 1000):
    from repro.simulator import Counters, SimResult
    c = Counters()
    c.loads = loads
    c.load_stall_ns = avg_lat_ns * loads
    c.hwpf_useless = useless
    c.hwpf_issued = max(useless, 1)
    return SimResult(makespan_ns=1e6, thread_times_ns=[1e6],
                     counters=c, data_bytes=1 << 20)


def test_compare_contention_flag_is_strictly_above_110_percent():
    base = _synthetic(200.0)
    # 1.10 * 200 has float fuzz just above 220: exactly-at stays quiet.
    at = perf_report(_synthetic(220.0), compare=base)
    assert "!! contention" not in at
    above = perf_report(_synthetic(221.0), compare=base)
    assert "!! contention" in above


def test_compare_inefficient_flag_is_strictly_above_150_percent():
    base = _synthetic(100.0, useless=10)  # 0.01 useless per load
    at = perf_report(_synthetic(100.0, useless=15), compare=base)
    assert "!! inefficient prefetcher" not in at
    above = perf_report(_synthetic(100.0, useless=16), compare=base)
    assert "!! inefficient prefetcher" in above


def test_compare_flags_match_regression_gate_language():
    """perf_report's 110%/150% flags and the history gate speak the same
    thresholds (regress.py reuses the coordinator's factors)."""
    report = perf_report(_synthetic(400.0), compare=_synthetic(200.0))
    assert "110%" in report
    assert "coordinator would flag this" in report
