"""Unit-level tests of the figure experiments at tiny volumes.

The benchmarks run the figures at full volume; these verify structure
(rows, columns, check counts) and a few volume-independent facts fast
enough for the unit suite.
"""

import pytest

from repro.bench.ablations import ablation_shuffle
from repro.bench.figures import (
    ALL_FIGURES, fig03, fig04, fig06, fig15, fig17, fig18, fig19,
)

TINY = 24 * 1024


def test_registry_covers_every_paper_figure():
    assert sorted(ALL_FIGURES) == [
        "fig03", "fig04", "fig05", "fig06", "fig07", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
        "fig19",
    ]


def test_fig03_structure():
    r = fig03(volume=TINY)
    assert [lab for lab, _ in r.rows] == [
        "pm/pf=off", "pm/pf=on", "dram/pf=off", "dram/pf=on"]
    assert len(r.checks) == 3
    # volume-independent fact: DRAM beats PM
    assert r.value("dram/pf=off", "throughput_gbps") \
        > r.value("pm/pf=off", "throughput_gbps")


def test_fig04_pm_flat_at_tiny_volume():
    r = fig04(volume=TINY)
    pm = r.series("pm_gbps")
    assert pm[-1] < pm[0] * 1.3  # PM barely scales with frequency


def test_fig06_amp_columns_present():
    r = fig06(volume=TINY)
    assert r.value("256B", "media_amp") == pytest.approx(1.0, abs=0.05)
    assert r.value("4096B", "media_amp") == pytest.approx(1.0, abs=0.05)


def test_fig15_avx256_always_slower():
    r = fig15(volume=TINY)
    for k in ("k=8", "k=24", "k=48"):
        assert r.value(k, "ISA-L_avx256") < r.value(k, "ISA-L_avx512")
        assert r.value(k, "DIALGA_avx256") < r.value(k, "DIALGA_avx512")


def test_fig17_normalized_to_isal():
    r = fig17(volume=TINY)
    for lab, vals in r.rows:
        assert vals["ISA-L"] == pytest.approx(1.0)
        assert vals["DIALGA"] < 1.0


def test_fig18_vanilla_is_slowest():
    r = fig18(volume=TINY)
    for lab, vals in r.rows:
        assert vals["Vanilla"] == min(vals.values())


def test_fig19_has_four_pressure_points():
    r = fig19(volume=TINY)
    assert [lab for lab, _ in r.rows] == [
        "ISA-L/1t", "DIALGA/1t", "ISA-L/18t", "DIALGA/18t"]


def test_ablation_shuffle_tiny():
    r = ablation_shuffle(volume=TINY)
    assert r.value("RS(28,24)", "shuffle_hwpf") == 0
