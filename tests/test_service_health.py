"""Health monitoring, retry jitter and the self-healing service loop."""

import pytest

from repro.obs import prometheus_text
from repro.pmstore import FaultInjector, PMStore
from repro.service import (
    ErasureCodingService,
    HealthMonitor,
    HealthState,
    Request,
    RetryPolicy,
    SelfHealer,
    ServiceConfig,
)
from repro.service.healing import RepairQueue, ScrubScheduler

# -- RetryPolicy validation + jitter (satellite 1) --------------------------


def test_retry_policy_rejects_bad_max_delay():
    with pytest.raises(ValueError, match="max_delay_ns"):
        RetryPolicy(max_delay_ns=-1.0)
    with pytest.raises(ValueError, match="max_delay_ns"):
        RetryPolicy(base_delay_ns=1000.0, max_delay_ns=500.0)


def test_retry_policy_rejects_bad_jitter():
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=-0.1)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.5)


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(jitter=1.0, seed=7, base_delay_ns=1000.0,
                         factor=1.0, max_delay_ns=10_000.0)
    for token in range(20):
        d1 = policy.delay_ns(1, token=token)
        assert d1 == policy.delay_ns(1, token=token)   # reproducible
        assert 500.0 <= d1 <= 1500.0                   # [0.5x, 1.5x]


def test_jitter_desynchronizes_tokens():
    policy = RetryPolicy(jitter=0.5, seed=0, base_delay_ns=1000.0)
    delays = {policy.delay_ns(1, token=t) for t in range(16)}
    assert len(delays) > 12  # callers spread out, not in lockstep


def test_zero_jitter_keeps_exact_schedule():
    policy = RetryPolicy(base_delay_ns=100.0, factor=2.0,
                         max_delay_ns=350.0)
    assert [policy.delay_ns(i, token=99) for i in (1, 2, 3)] == \
        [100.0, 200.0, 350.0]
    assert policy.total_delay_ns(3) == 650.0


def test_jitter_respects_max_delay_cap():
    policy = RetryPolicy(jitter=1.0, base_delay_ns=1000.0,
                         max_delay_ns=1000.0)
    assert all(policy.delay_ns(1, token=t) <= 1000.0 for t in range(50))


# -- HealthMonitor state machine --------------------------------------------


def test_breaker_trips_after_threshold_in_window():
    mon = HealthMonitor(6, window_ns=1000.0, trip_threshold=3)
    assert mon.record_error(0, 10.0) is HealthState.CLOSED
    assert mon.record_error(0, 20.0) is HealthState.CLOSED
    assert mon.record_error(0, 30.0) is HealthState.OPEN
    assert mon.open_devices() == [0]


def test_stale_errors_fall_out_of_window():
    mon = HealthMonitor(6, window_ns=100.0, trip_threshold=3)
    mon.record_error(1, 0.0)
    mon.record_error(1, 10.0)
    # Third error arrives after the first two expired: no trip.
    assert mon.record_error(1, 500.0) is HealthState.CLOSED


def test_cooldown_half_open_then_clean_probe_closes():
    mon = HealthMonitor(4, window_ns=100.0, trip_threshold=1,
                        cooldown_ns=1000.0)
    mon.record_error(2, 0.0)
    assert mon.state(2) is HealthState.OPEN
    assert mon.tick(500.0) == []            # cooldown not elapsed
    assert mon.tick(1000.0) == [2]          # half-opens
    mon.probe_result(2, 1001.0, clean=True)
    assert mon.state(2) is HealthState.CLOSED
    assert mon.mttr_ns() == [1001.0]


def test_dirty_probe_reopens_and_mttr_spans_flapping():
    mon = HealthMonitor(4, window_ns=100.0, trip_threshold=1,
                        cooldown_ns=100.0)
    mon.record_error(0, 0.0)
    mon.tick(100.0)
    mon.probe_result(0, 110.0, clean=False)     # dirty: back to OPEN
    assert mon.state(0) is HealthState.OPEN
    mon.tick(210.0)
    mon.probe_result(0, 220.0, clean=True)
    # One incident, measured from the first OPEN.
    assert mon.mttr_ns() == [220.0]


def test_error_while_half_open_reopens():
    mon = HealthMonitor(4, window_ns=100.0, trip_threshold=1,
                        cooldown_ns=100.0)
    mon.record_error(3, 0.0)
    mon.tick(100.0)
    assert mon.state(3) is HealthState.HALF_OPEN
    assert mon.record_error(3, 105.0) is HealthState.OPEN


def test_monitor_summary_shape():
    mon = HealthMonitor(4, trip_threshold=1)
    mon.record_error(1, 5.0)
    mon.record_transient(6.0)
    s = mon.summary()
    assert s["devices"]["1"]["state"] == "open"
    assert s["transient_faults"] == 1
    assert s["incidents_resolved"] == 0


def test_monitor_validates():
    with pytest.raises(ValueError):
        HealthMonitor(0)
    with pytest.raises(ValueError):
        HealthMonitor(4, trip_threshold=0)


# -- RepairQueue / ScrubScheduler -------------------------------------------


def _store_with_losses():
    store = PMStore(4, 3, block_bytes=256)
    for i in range(8):
        store.put(f"o{i}", bytes([i]) * 600)
    return store


def test_repair_queue_pops_most_damaged_first():
    store = _store_with_losses()
    store.mark_lost(0, 1)
    store.mark_lost(2, 0)
    store.mark_lost(2, 3)
    q = RepairQueue()
    assert q.enqueue_backlog(store) == 2
    assert q.pop_most_urgent(store) == 2    # two losses beats one
    assert q.pop_most_urgent(store) == 0
    assert q.pop_most_urgent(store) is None


def test_repair_queue_skips_healed_and_unrepairable():
    store = _store_with_losses()
    store.mark_lost(0, 1)
    q = RepairQueue()
    q.enqueue(0)
    store.repair(0)                      # healed behind the queue's back
    assert q.pop_most_urgent(store) is None
    q.unrepairable.add(1)
    q.enqueue(1)                         # parked stripes never re-enter
    assert len(q) == 0


def test_scrub_scheduler_paces_and_wraps():
    sched = ScrubScheduler(period_ns=100.0, stripes_per_slice=3)
    assert sched.due(0.0)
    assert sched.next_slice(5, 0.0) == [0, 1, 2]
    assert not sched.due(50.0)
    assert sched.due(100.0)
    assert sched.next_slice(5, 100.0) == [3, 4, 0]   # round-robin wrap
    assert sched.next_slice(0, 200.0) == []


def test_scrub_scheduler_validates():
    with pytest.raises(ValueError):
        ScrubScheduler(period_ns=0.0)
    with pytest.raises(ValueError):
        ScrubScheduler(stripes_per_slice=0)


# -- SelfHealer end-to-end ---------------------------------------------------


def _healing_service(trip_threshold=2):
    svc = ErasureCodingService(
        4, 3, block_bytes=256,
        config=ServiceConfig(max_queue_depth=16, max_batch=4))
    healer = SelfHealer(
        monitor=HealthMonitor(4 + 3, window_ns=1e7,
                              trip_threshold=trip_threshold,
                              cooldown_ns=5e6),
        scrub=ScrubScheduler(period_ns=100_000.0, stripes_per_slice=2))
    svc.attach_healer(healer)
    return svc, healer


def test_degraded_reads_trip_breaker_and_repairs_run_in_idle_gaps():
    svc, healer = _healing_service()
    svc.submit_many([Request.put(f"k{i}", bytes([i]) * 700,
                                 arrival_ns=float(i)) for i in range(6)])
    svc.drain()
    svc.store.mark_device_lost(2)
    t0 = svc.clock_ns
    # Back-to-back degraded reads (no idle gap): the symptoms pile up
    # and trip the breaker before any maintenance can mask them.
    svc.submit_many([Request.get(f"k{i}", arrival_ns=t0)
                     for i in range(4)])
    # One straggler far out: drain's idle gap lets repairs run first.
    svc.submit(Request.get("k5", arrival_ns=t0 + 5e7))
    results = {r.request.key: r for r in svc.drain()}
    assert all(r.ok for r in results.values())
    assert results["k0"].degraded
    assert not results["k5"].degraded       # healed before it arrived
    assert svc.metrics.count("health_trips") == 1
    assert svc.metrics.count("repair_blocks_rebuilt") >= 1
    assert svc.store.stripes_with_losses() == []


def test_breaker_recovery_closes_after_repairs():
    svc, healer = _healing_service()
    svc.submit_many([Request.put(f"k{i}", bytes([i]) * 700,
                                 arrival_ns=float(i)) for i in range(6)])
    svc.drain()
    svc.store.mark_device_lost(1)
    t0 = svc.clock_ns
    svc.submit_many([Request.get(f"k{i}", arrival_ns=t0)
                     for i in range(4)])
    svc.drain()
    assert healer.monitor.state(1) is HealthState.OPEN
    # Quiet period: repeated maintenance windows advancing the clock
    # (as the chaos engine's settle loop does) so the cooldown elapses
    # and the half-open probe can run.
    for _ in range(30):
        end = svc.clock_ns + 5e6
        svc.run_maintenance(end)
        svc.clock_ns = max(svc.clock_ns, end)
        if healer.monitor.state(1) is HealthState.CLOSED:
            break
    assert healer.monitor.state(1) is HealthState.CLOSED
    assert svc.metrics.count("health_recoveries") == 1
    assert healer.monitor.mttr_ns()  # incident resolved, MTTR recorded
    assert 1 not in svc.store.lost_devices


def test_trip_refuses_isolation_past_parity_budget():
    svc, healer = _healing_service(trip_threshold=1)
    svc.submit_many([Request.put(f"k{i}", bytes([i]) * 700,
                                 arrival_ns=float(i)) for i in range(6)])
    svc.drain()
    # Stripe 0 already carries m erasures; isolating one more device
    # would exceed the budget, so the trip must refuse.
    for block in range(svc.store.m):
        svc.store.mark_lost(0, block)
    healer.on_corruption(0, svc.store.m, now_ns=svc.clock_ns)
    assert svc.metrics.count("health_isolation_refused") == 1
    assert svc.store.m not in svc.store.lost_devices


def test_background_scrub_finds_silent_corruption_and_counts_it():
    svc, healer = _healing_service()
    svc.submit_many([Request.put(f"k{i}", bytes([i]) * 700,
                                 arrival_ns=float(i)) for i in range(6)])
    svc.drain()
    inj = FaultInjector(svc.store, seed=9)
    inj.bit_flip(stripe=0, block=0, nbits=2)       # silent
    svc.run_maintenance(svc.clock_ns + 5e7)
    assert svc.metrics.count("scrub_corrupt_blocks") >= 1
    assert svc.metrics.count("repair_blocks_rebuilt") >= 1
    assert svc.store.get("k0") == bytes([0]) * 700
    # Satellite 2: the counters surface through the Prometheus exporter.
    text = prometheus_text(svc.metrics)
    assert "scrub_corrupt_blocks" in text
    assert "repair_blocks_rebuilt" in text


def test_healer_requires_positive_thread_budget():
    with pytest.raises(ValueError):
        SelfHealer(maintenance_threads=0)
