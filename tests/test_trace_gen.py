"""Unit tests for trace generation (layout, ISA-L pattern, XOR pattern)."""

import numpy as np
import pytest

from repro.gf import gf8, matrix_to_bitmatrix
from repro.codes import RSCode
from repro.simulator.params import CPUConfig
from repro.trace import (
    LOAD, STORE, SWPF, COMPUTE, FENCE,
    IsalVariant, StripeLayout, Trace, Workload, isal_trace, xor_schedule_trace,
)
from repro.trace.isal_gen import _row_order
from repro.xorsched import naive_schedule

CPU = CPUConfig()


# -- layout --------------------------------------------------------------------

def test_layout_block_pages():
    lay = StripeLayout(4, 2, 1024)
    assert lay.lines_per_block == 16
    assert lay.pages_per_block == 1
    assert StripeLayout(4, 2, 5 * 1024).pages_per_block == 2


def test_layout_blocks_on_distinct_pages():
    lay = StripeLayout(4, 2, 1024)
    pages = {lay.block_addr(0, b) // 4096 for b in range(6)}
    assert len(pages) == 6


def test_layout_threads_disjoint():
    a = StripeLayout(4, 2, 1024, thread=0)
    b = StripeLayout(4, 2, 1024, thread=1)
    assert a.block_addr(0, 0) != b.block_addr(0, 0)
    assert a.thread_base >> 44 != b.thread_base >> 44


def test_layout_validation():
    with pytest.raises(ValueError):
        StripeLayout(4, 2, 32)
    lay = StripeLayout(4, 2, 1024)
    with pytest.raises(IndexError):
        lay.block_addr(0, 6)
    with pytest.raises(IndexError):
        lay.line_addr(0, 0, 16)


def test_layout_line_addresses_sequential():
    lay = StripeLayout(4, 2, 1024)
    assert lay.line_addr(0, 0, 1) - lay.line_addr(0, 0, 0) == 64


# -- workload --------------------------------------------------------------------

def test_workload_validation():
    with pytest.raises(ValueError):
        Workload(k=0)
    with pytest.raises(ValueError):
        Workload(k=4, op="decode")          # missing erasures
    with pytest.raises(ValueError):
        Workload(k=4, op="frobnicate")
    with pytest.raises(ValueError):
        Workload(k=4, lrc_l=3)
    with pytest.raises(ValueError):
        Workload(k=4, simd="sse2")


def test_workload_stripes():
    wl = Workload(k=8, m=4, block_bytes=1024, data_bytes_per_thread=1 << 20)
    assert wl.stripe_data_bytes == 8192
    assert wl.stripes_per_thread == 128


# -- row order / shuffle ------------------------------------------------------------

def test_row_order_plain():
    assert _row_order(8, shuffle=False) == list(range(8))


def test_row_order_shuffle_breaks_sequentiality():
    order = _row_order(64, shuffle=True)
    assert sorted(order) == list(range(64))
    diffs = np.abs(np.diff(order))
    assert not np.any(diffs <= 2)


def test_row_order_shuffle_is_static():
    assert _row_order(64, True) == _row_order(64, True)


def test_row_order_small():
    assert _row_order(4, True) == [3, 2, 1, 0]
    assert _row_order(2, True) == [0, 1]


# -- ISA-L trace ---------------------------------------------------------------------

def _wl(**kw):
    defaults = dict(k=4, m=2, block_bytes=1024, data_bytes_per_thread=8192)
    defaults.update(kw)
    return Workload(**defaults)


def test_isal_trace_op_counts():
    wl = _wl()
    t = isal_trace(wl, CPU)
    counts = t.counts()
    stripes = wl.stripes_per_thread
    L = 16
    assert counts["LOAD"] == stripes * L * wl.k
    assert counts["STORE"] == stripes * L * wl.m
    assert counts["COMPUTE"] == stripes * L
    assert counts["FENCE"] == stripes
    assert t.data_bytes == stripes * wl.k * wl.block_bytes


def test_isal_trace_row_major_addresses():
    wl = _wl(data_bytes_per_thread=4096)
    t = isal_trace(wl, CPU)
    loads = [arg for op, arg in t.ops if op == LOAD]
    lay = StripeLayout(wl.k, wl.m, wl.block_bytes)
    # First row: line 0 of each of the k blocks.
    assert loads[:4] == [lay.line_addr(0, j, 0) for j in range(4)]
    # Second row begins after k loads.
    assert loads[4] == lay.line_addr(0, 0, 1)


def test_isal_trace_decode_loads_k_stores_erasures():
    wl = _wl(op="decode", erasures=1)
    t = isal_trace(wl, CPU)
    counts = t.counts()
    stripes = wl.stripes_per_thread
    assert counts["LOAD"] == stripes * 16 * wl.k
    assert counts["STORE"] == stripes * 16 * 1


def test_isal_trace_lrc_extra_stores():
    wl = _wl(lrc_l=2)
    t = isal_trace(wl, CPU)
    counts = t.counts()
    stripes = wl.stripes_per_thread
    assert counts["STORE"] == stripes * 16 * (wl.m + 2)


def test_isal_trace_sw_prefetch_targets():
    wl = _wl(data_bytes_per_thread=4096)
    d = wl.k  # one row ahead
    t = isal_trace(wl, CPU, IsalVariant(sw_prefetch_distance=d))
    ops = t.ops
    # Each SWPF must target the address loaded exactly d loads later.
    loads = [arg for op, arg in ops if op == LOAD]
    swpfs = [arg for op, arg in ops if op == SWPF]
    total = 16 * wl.k
    assert len(swpfs) == total - d  # tail reverts to plain kernel
    for n, target in enumerate(swpfs):
        assert target == loads[n + d]


def test_isal_trace_shuffle_preserves_coverage():
    wl = _wl(data_bytes_per_thread=4096)
    base = isal_trace(wl, CPU)
    shuf = isal_trace(wl, CPU, IsalVariant(shuffle=True))
    assert sorted(a for op, a in base.ops if op == LOAD) == \
           sorted(a for op, a in shuf.ops if op == LOAD)
    assert [a for op, a in base.ops if op == LOAD] != \
           [a for op, a in shuf.ops if op == LOAD]


def test_isal_trace_bf_distances():
    wl = _wl(data_bytes_per_thread=4096)
    t = isal_trace(wl, CPU, IsalVariant(sw_prefetch_distance=4,
                                        bf_first_line_distance=8))
    loads = [arg for op, arg in t.ops if op == LOAD]
    # Walk ops: every SWPF targeting a first-line-of-XPLine must sit
    # 8 elements ahead; others 4 elements ahead.
    n = 0
    for op, arg in t.ops:
        if op == LOAD:
            n += 1
        elif op == SWPF:
            idx = loads.index(arg)
            if (arg // 64) % 4 == 0:
                assert idx == n + 8
            else:
                assert idx == n + 4


def test_isal_trace_xpline_granularity_groups_lines():
    wl = _wl(data_bytes_per_thread=4096)
    t = isal_trace(wl, CPU, IsalVariant(xpline_granularity=True))
    loads = [arg for op, arg in t.ops if op == LOAD]
    # First four loads are 4 consecutive lines of block 0.
    assert loads[1] - loads[0] == 64
    assert loads[3] - loads[0] == 192
    # Fifth load moves to block 1.
    assert loads[4] - loads[0] >= 4096
    # Same total coverage as row-major.
    base = isal_trace(wl, CPU)
    assert sorted(loads) == sorted(a for op, a in base.ops if op == LOAD)


def test_isal_trace_decompose_parity_reload():
    wl = _wl(k=8, data_bytes_per_thread=8192)
    t = isal_trace(wl, CPU, IsalVariant(decompose_group=4))
    counts = t.counts()
    stripes = wl.stripes_per_thread
    L = 16
    # 2 passes: data loads + parity reload on pass 2
    assert counts["LOAD"] == stripes * (L * 8 + L * wl.m)
    assert counts["STORE"] == stripes * L * wl.m * 2


def test_isal_trace_decompose_validation():
    with pytest.raises(ValueError):
        isal_trace(_wl(), CPU, IsalVariant(decompose_group=0))


def test_isal_trace_odd_block_size():
    wl = _wl(block_bytes=5 * 1024, data_bytes_per_thread=5 * 1024 * 4)
    t = isal_trace(wl, CPU)
    counts = t.counts()
    assert counts["LOAD"] == wl.stripes_per_thread * 80 * wl.k


# -- XOR trace ------------------------------------------------------------------------

def test_xor_trace_counts():
    code = RSCode(4, 2, matrix="cauchy")
    bm = matrix_to_bitmatrix(gf8, code.parity_rows)
    sched = naive_schedule(bm, 4, 2, 8)
    wl = _wl(data_bytes_per_thread=4096)
    t = xor_schedule_trace(wl, CPU, sched)
    counts = t.counts()
    # One COMPUTE per schedule op; one load-line set per data-source op.
    assert counts["COMPUTE"] == sched.total_ops
    data_reads = sum(1 for op, _, src in sched.ops if src < 32)
    # 1 KB block -> 128 B packets -> 2 lines each
    assert counts["LOAD"] == data_reads * 2
    assert counts["STORE"] == 2 * 16  # m=2 parity blocks, 16 lines each
    assert counts["FENCE"] == 1


def test_xor_trace_geometry_mismatch():
    code = RSCode(4, 2, matrix="cauchy")
    bm = matrix_to_bitmatrix(gf8, code.parity_rows)
    sched = naive_schedule(bm, 4, 2, 8)
    with pytest.raises(ValueError):
        xor_schedule_trace(_wl(k=6), CPU, sched)


def test_xor_trace_small_block_subline_packets():
    code = RSCode(4, 2, matrix="cauchy")
    bm = matrix_to_bitmatrix(gf8, code.parity_rows)
    sched = naive_schedule(bm, 4, 2, 8)
    wl = _wl(block_bytes=256, data_bytes_per_thread=1024)
    t = xor_schedule_trace(wl, CPU, sched)
    loads = [a for op, a in t.ops if op == LOAD]
    lay = StripeLayout(4, 2, 256)
    # All loads fall inside data blocks.
    for a in loads:
        assert any(lay.block_addr(0, j) <= a < lay.block_addr(0, j) + 256
                   for j in range(4))
