"""Tests for FigureResult JSON/CSV exports and the CLI --json path."""

import json

from repro.bench.cli import main as cli_main
from repro.bench.report import FigureResult


def _fig():
    fig = FigureResult("figZ", "export demo", ["x", "y"])
    fig.add_row("a", x=1.5, y=None)
    fig.add_row("b", x=2.5, y=3.0)
    fig.check("c1", True, "d1")
    fig.notes.append("n1")
    return fig


def test_to_dict_roundtrips_through_json():
    d = json.loads(json.dumps(_fig().to_dict()))
    assert d["fig_id"] == "figZ"
    assert d["rows"][0] == {"point": "a", "x": 1.5, "y": None}
    assert d["checks"][0]["passed"] is True
    assert d["notes"] == ["n1"]


def test_to_csv():
    csv_text = _fig().to_csv()
    lines = csv_text.strip().split("\n")
    assert lines[0].strip() == "point,x,y"
    assert lines[1].strip() == "a,1.5,"
    assert lines[2].strip() == "b,2.5,3.0"


def test_cli_json_output(tmp_path):
    rc = cli_main(["ablation_shuffle", "--out", str(tmp_path),
                   "--json", "--volume", "32768"])
    assert rc == 0
    data = json.loads((tmp_path / "ablation_shuffle.json").read_text())
    assert data["fig_id"] == "ablation_shuffle"
    assert all(c["passed"] for c in data["checks"])


def test_cli_plot_flag(capsys):
    rc = cli_main(["fig03", "--volume", "16384", "--plot"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "o=throughput_gbps" in out
