"""Tests for the benchmark harness: report, runner, CLI."""

import pytest

from repro import Workload
from repro.bench import FigureResult, fmt_value, run_libraries, scaled, standard_libraries
from repro.bench.cli import main as cli_main
from repro.bench.runner import best_other
from repro.libs import ISAL


# -- report -----------------------------------------------------------------

def _fig():
    fig = FigureResult("figX", "demo", ["a", "b"])
    fig.add_row("p1", a=1.0, b=2.0)
    fig.add_row("p2", a=3.0)
    fig.check("always true", True, "ok")
    fig.check("always false", False)
    return fig


def test_fmt_value():
    assert fmt_value(None) == "n/a"
    assert fmt_value(1.2345) == "1.23"
    assert fmt_value(7) == "7"


def test_figure_value_and_series():
    fig = _fig()
    assert fig.value("p1", "a") == 1.0
    assert fig.value("p2", "b") is None
    assert fig.series("a") == [1.0, 3.0]
    with pytest.raises(KeyError):
        fig.value("p3", "a")


def test_figure_pass_fraction():
    fig = _fig()
    assert fig.pass_fraction == 0.5
    assert not fig.all_passed


def test_figure_render_contains_everything():
    out = _fig().render()
    assert "figX" in out and "p1" in out and "n/a" in out
    assert "[PASS] always true [ok]" in out
    assert "[FAIL] always false" in out


def test_table_alignment_stable():
    lines = _fig().table_str().splitlines()
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all rows padded to same width


def test_empty_checks_pass_fraction():
    fig = FigureResult("f", "t", ["a"])
    assert fig.pass_fraction == 1.0 and fig.all_passed


# -- runner ------------------------------------------------------------------

def test_scaled_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
    assert scaled(100 * 1024) == 51200
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
    assert scaled(100 * 1024) == 8 * 1024  # floor
    monkeypatch.delenv("REPRO_BENCH_SCALE")
    assert scaled(100 * 1024) == 100 * 1024


def test_standard_libraries_names():
    libs = standard_libraries(6, 3)
    assert [l.name for l in libs] == ["ISA-L", "ISA-L-D", "Zerasure",
                                      "Cerasure", "DIALGA"]
    with pytest.raises(ValueError):
        standard_libraries(6, 3, include=("NotALib",))


def test_run_libraries_handles_unsupported():
    libs = standard_libraries(48, 4, include=("ISA-L", "Zerasure"))
    wl = Workload(k=48, m=4, block_bytes=1024, data_bytes_per_thread=48 * 1024)
    res = run_libraries(wl, libs)
    assert res["Zerasure"] is None       # wide stripe: no convergence
    assert res["ISA-L"] is not None


def test_best_other_excludes_dialga():
    libs = standard_libraries(6, 3, include=("ISA-L", "DIALGA"),
                              dialga_kwargs={"use_probe": False})
    wl = Workload(k=6, m=3, block_bytes=1024, data_bytes_per_thread=24 * 1024)
    res = run_libraries(wl, libs)
    assert best_other(res) == res["ISA-L"].throughput_gbps


# -- CLI ----------------------------------------------------------------------

def test_cli_list(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "ablation_shuffle" in out


def test_cli_unknown_experiment(capsys):
    assert cli_main(["fig99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_cli_runs_one_experiment(capsys, tmp_path):
    rc = cli_main(["fig03", "--out", str(tmp_path), "--volume", "32768"])
    assert rc == 0
    assert (tmp_path / "fig03.txt").exists()
    assert "fig03" in capsys.readouterr().out
