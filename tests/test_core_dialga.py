"""Unit tests for DIALGA's core components (§4)."""

import numpy as np
import pytest

from repro import DialgaEncoder, HardwareConfig, Workload, ISAL
from repro.core import (
    AdaptiveCoordinator,
    CoordinatorConfig,
    HillClimber,
    Policy,
    bf_distances,
    build_prefetch_pointers,
    eq1_max_distance,
    static_shuffle_mapping,
    thrash_thread_bound,
)
from repro.core.operator import verify_shuffle_defeats_streamer
from repro.simulator import Counters
from repro.simulator.params import PMConfig
from repro.trace.layout import StripeLayout

HW = HardwareConfig()


# -- Policy ---------------------------------------------------------------

def test_policy_to_variant_maps_shuffle():
    assert not Policy(hw_prefetch=True).to_variant().shuffle
    assert Policy(hw_prefetch=False).to_variant().shuffle


def test_policy_to_variant_distances():
    v = Policy(sw_distance=12, bf_first_distance=24,
               xpline_granularity=True).to_variant()
    assert v.sw_prefetch_distance == 12
    assert v.bf_first_line_distance == 24
    assert v.xpline_granularity


def test_policy_describe():
    s = Policy(hw_prefetch=False, sw_distance=8, xpline_granularity=True).describe()
    assert "shuffle" in s and "xpline" in s


# -- HillClimber -------------------------------------------------------------

def test_hillclimb_finds_parabola_minimum():
    hc = HillClimber(lambda x: (x - 37) ** 2, lower=1, upper=100)
    best, val = hc.search(10)
    assert best == 37 and val == 0


def test_hillclimb_respects_bounds():
    hc = HillClimber(lambda x: -x, lower=1, upper=50)
    best, _ = hc.search(45)
    assert best == 50


def test_hillclimb_memoizes():
    calls = []
    hc = HillClimber(lambda x: calls.append(x) or abs(x - 5), lower=1, upper=20)
    hc.search(5)
    assert len(calls) == len(set(calls))


def test_hillclimb_stops_at_local_optimum():
    # two basins: x=10 (local) and x=40 (global); start near 10 with a
    # small neighborhood -> stays local (that's the algorithm's nature)
    def f(x):
        return min(abs(x - 10), abs(x - 40) - 5)
    hc = HillClimber(f, lower=1, upper=60, neighborhood=4)
    best, _ = hc.search(9)
    assert abs(best - 10) <= 2


def test_hillclimb_bad_bounds():
    with pytest.raises(ValueError):
        HillClimber(lambda x: x, lower=5, upper=1)


# -- buffer-friendly math ------------------------------------------------------

def test_bf_distances_default_paper_init():
    d1, d = bf_distances(24)
    assert (d1, d) == (28, 24)


def test_bf_distances_scaled_from_base():
    d1, d = bf_distances(24, base=30)
    assert d1 == 60 and d == 30


def test_eq1_cap_paper_example():
    """Paper §4.3.3: on the 96 KB / 6-channel testbed, thrashing starts
    beyond 12 threads (RS(28,24), hardware prefetching on)."""
    pm = PMConfig()
    # At 12 threads with k=24 the cap is still positive...
    assert eq1_max_distance(12, 24, 4, pm) >= 24
    # ...but at 16 threads the budget drops to a single XPLine row.
    assert eq1_max_distance(16, 24, 4, pm) == 24


def test_eq1_monotonic_in_threads():
    pm = PMConfig()
    caps = [eq1_max_distance(nt, 24, 4, pm) for nt in (1, 4, 8, 16, 32)]
    assert caps == sorted(caps, reverse=True)
    assert caps[-1] >= 1


def test_eq1_validation():
    with pytest.raises(ValueError):
        eq1_max_distance(0, 24, 4, PMConfig())


def test_thrash_thread_bound_wide_stripe():
    """§5.3: 96 KB buffer sustains 8 x 48 streams."""
    assert thrash_thread_bound(48, PMConfig()) == 8
    assert thrash_thread_bound(24, PMConfig()) == 16


# -- operator -------------------------------------------------------------------

def test_static_shuffle_mapping_is_permutation():
    order = static_shuffle_mapping(64)
    assert sorted(order) == list(range(64))


def test_static_shuffle_defeats_streamer():
    assert verify_shuffle_defeats_streamer(static_shuffle_mapping(64))
    assert verify_shuffle_defeats_streamer(static_shuffle_mapping(16))


def test_shuffle_mapping_static():
    assert static_shuffle_mapping(32) == static_shuffle_mapping(32)


def test_prefetch_pointer_table_uniform():
    lay = StripeLayout(4, 2, 1024)
    order = list(range(16))
    d = 4
    table = build_prefetch_pointers(lay, 0, order, d)
    total = 16 * 4
    assert len(table) == total
    # tail has no pointers
    assert all(t == [] for t in table[total - d:])
    # head pointers target d elements ahead
    assert table[0] == [lay.line_addr(0, 0, 1)]


def test_prefetch_pointer_table_bf_split():
    lay = StripeLayout(4, 2, 1024)
    order = list(range(16))
    table = build_prefetch_pointers(lay, 0, order, d=4, d_first=8)
    flat = [t for ts in table for t in ts]
    firsts = [t for t in flat if (t // 64) % 4 == 0]
    rest = [t for t in flat if (t // 64) % 4 != 0]
    assert firsts and rest
    # Every non-leading line of rows 1..15 must still be covered.
    covered = set(flat)
    for n in range(4, 16 * 4):
        rp, j = divmod(n, 4)
        addr = lay.line_addr(0, j, rp)
        if (addr // 64) % 4 != 0 or rp >= 2:
            assert addr in covered or n >= 16 * 4 - 8


def test_prefetch_pointer_table_matches_trace_generator():
    """The pointer table and the emitted SWPF ops must agree 1:1."""
    from repro.simulator.params import CPUConfig
    from repro.trace import SWPF, Workload, isal_trace, IsalVariant
    wl = Workload(k=4, m=2, block_bytes=1024, data_bytes_per_thread=4096)
    variant = IsalVariant(sw_prefetch_distance=4, bf_first_line_distance=8)
    trace = isal_trace(wl, CPUConfig(), variant)
    emitted = [a for op, a in trace.ops if op == SWPF]
    lay = StripeLayout(4, 2, 1024)
    table = build_prefetch_pointers(lay, 0, list(range(16)), d=4, d_first=8)
    expected = [t for ts in table for t in ts]
    assert emitted == expected


# -- coordinator -------------------------------------------------------------------

def _wl(**kw):
    base = dict(k=8, m=4, block_bytes=1024, data_bytes_per_thread=128 * 1024)
    base.update(kw)
    return Workload(**base)


def test_initial_policy_low_pressure():
    c = AdaptiveCoordinator(_wl(), HW)
    p = c.policy
    assert p.hw_prefetch
    assert p.sw_distance == 8  # d = k without a probe
    assert p.bf_first_distance == 12  # k + 4 (paper init)
    assert not p.xpline_granularity


def test_initial_policy_high_pressure():
    c = AdaptiveCoordinator(_wl(nthreads=16), HW)
    p = c.policy
    assert not p.hw_prefetch          # shuffle off-switch
    assert p.xpline_granularity       # 256 B loop expansion
    assert p.sw_distance is not None
    assert p.sw_distance <= eq1_max_distance(16, 8, 4, HW.pm)


def test_initial_policy_wide_stripe():
    c = AdaptiveCoordinator(_wl(k=48), HW)
    p = c.policy
    assert p.hw_prefetch  # no management needed: streamer self-disables
    assert p.sw_distance is not None


def test_initial_policy_thread_threshold_boundary():
    cfg = CoordinatorConfig(thread_threshold=12)
    at = AdaptiveCoordinator(_wl(nthreads=12), HW, config=cfg).policy
    above = AdaptiveCoordinator(_wl(nthreads=13), HW, config=cfg).policy
    assert at.hw_prefetch and not above.hw_prefetch


def test_coordinator_disables_hw_on_contention():
    c = AdaptiveCoordinator(_wl(), HW)
    base = Counters()
    base.loads, base.load_stall_ns = 1000, 20_000.0   # 20 ns baseline
    c.observe(base)
    assert c.policy.hw_prefetch
    hot = Counters()
    hot.loads, hot.load_stall_ns = 1000, 40_000.0     # 2x the baseline
    hot.hwpf_useless = 100
    c.observe(hot)           # establishes useless baseline
    hotter = Counters()
    hotter.loads, hotter.load_stall_ns = 1000, 40_000.0
    hotter.hwpf_useless = 300  # 3x growth > 150%
    c.observe(hotter)
    assert not c.policy.hw_prefetch
    assert c.switches == 1


def test_coordinator_reenables_on_relief():
    c = AdaptiveCoordinator(_wl(), HW)
    for loads, stall, useless in ((1000, 20_000.0, 100),
                                  (1000, 42_000.0, 100),
                                  (1000, 42_000.0, 260)):
        s = Counters()
        s.loads, s.load_stall_ns, s.hwpf_useless = loads, stall, useless
        c.observe(s)
    assert not c.policy.hw_prefetch
    cool = Counters()
    cool.loads, cool.load_stall_ns = 1000, 20_000.0
    c.observe(cool)
    assert c.policy.hw_prefetch


def test_coordinator_ignores_empty_sample():
    c = AdaptiveCoordinator(_wl(), HW)
    p = c.observe(Counters())
    assert p == c.policy


def test_coordinator_fluctuation_triggers_research():
    probe_calls = []

    def probe(d):
        probe_calls.append(d)
        return abs(d - 20)

    c = AdaptiveCoordinator(_wl(), HW, probe=probe)
    n_init = len(probe_calls)
    assert n_init > 0  # initial search ran
    s = Counters()
    s.loads, s.load_stall_ns = 1000, 20_000.0
    c.observe(s, throughput_gbps=2.0)
    c.observe(s, throughput_gbps=2.01)   # small swing: no re-search
    assert len(probe_calls) == n_init
    c.observe(s, throughput_gbps=3.0)    # >10% swing: re-search
    assert len(probe_calls) >= n_init


# -- DialgaEncoder end-to-end ---------------------------------------------------

def test_dialga_geometry_mismatch():
    with pytest.raises(ValueError, match="geometry"):
        DialgaEncoder(8, 4, use_probe=False).run(_wl(k=6), HW)


def test_dialga_policy_log_populated():
    enc = DialgaEncoder(8, 4, use_probe=False, chunks=4)
    enc.run(_wl(), HW)
    assert len(enc.policy_log) >= 4


def test_dialga_policy_override():
    pol = Policy(hw_prefetch=False, sw_distance=16)
    enc = DialgaEncoder(8, 4, policy_override=pol)
    enc.run(_wl(), HW)
    assert enc.policy_log == [pol]


def test_dialga_beats_isal_on_pm():
    wl = _wl(data_bytes_per_thread=96 * 1024)
    d = DialgaEncoder(8, 4, use_probe=False).run(wl, HW)
    i = ISAL(8, 4).run(wl, HW)
    assert d.throughput_gbps > i.throughput_gbps


def test_dialga_nonadaptive_single_policy():
    enc = DialgaEncoder(8, 4, adaptive=False, use_probe=False)
    enc.run(_wl(), HW)
    assert len(enc.policy_log) == 1


def test_dialga_high_pressure_uses_xpline():
    enc = DialgaEncoder(24, 4, use_probe=False, chunks=2)
    wl = Workload(k=24, m=4, block_bytes=1024, nthreads=14,
                  data_bytes_per_thread=32 * 1024)
    enc.run(wl, HW)
    assert enc.policy_log[0].xpline_granularity
    assert not enc.policy_log[0].hw_prefetch
