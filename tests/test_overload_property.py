"""Property-based tests: the overload layer's two load-bearing
invariants under arbitrary fault schedules and traffic shapes.

1. **Retry spend is budget-bounded**: whatever transient-fault storm
   hits the service, lifetime retries spent never exceed
   ``initial + ratio * successes`` — retries cannot amplify beyond the
   service's own goodput.
2. **Acked bytes stay readable**: every PUT the service *completed*
   (across shedding, brownout, degraded serving and slow devices)
   reads back bit-exactly afterwards — graceful degradation never
   trades away durability.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.pmstore import FaultInjector
from repro.service import (
    ErasureCodingService,
    OverloadConfig,
    Request,
    RetryPolicy,
    ServiceConfig,
    put_wave,
)
from repro.service.request import RequestKind, RequestStatus


@st.composite
def overload_case(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    nclients = draw(st.integers(min_value=1, max_value=6))
    objects = draw(st.integers(min_value=1, max_value=3))
    fault_rate = draw(st.floats(min_value=0.0, max_value=1.0))
    fails_per_key = draw(st.integers(min_value=0, max_value=6))
    budget_initial = draw(st.floats(min_value=0.0, max_value=6.0))
    budget_ratio = draw(st.floats(min_value=0.0, max_value=1.0))
    slack_us = draw(st.sampled_from([None, 20, 200, 5_000]))
    slow_penalty_ns = draw(st.sampled_from([0.0, 5e5, 5e6]))
    return (seed, nclients, objects, fault_rate, fails_per_key,
            budget_initial, budget_ratio, slack_us, slow_penalty_ns)


def _build(case):
    (seed, nclients, objects, fault_rate, fails_per_key,
     budget_initial, budget_ratio, slack_us, slow_penalty_ns) = case
    overload = OverloadConfig(
        target_batch_latency_ns=200_000.0,
        retry_budget_initial=budget_initial,
        retry_budget_ratio=budget_ratio,
        retry_budget_cap=budget_initial + 4.0,
        brownout_enter_after=2,
        brownout_exit_after=2,
        brownout_enter_pressure=0.5,
        hedge_min_samples=2)
    svc = ErasureCodingService(
        4, 2, block_bytes=256,
        config=ServiceConfig(
            max_queue_depth=8, max_batch=4, verify_reads=True,
            retry=RetryPolicy(max_attempts=6, base_delay_ns=50_000.0,
                              factor=2.0, jitter=0.5, seed=seed),
            overload=overload))
    inj = FaultInjector(svc.store, seed=seed)
    if fault_rate > 0 and fails_per_key > 0:
        svc.store.add_fault_hook(inj.transient_hook(
            rate=fault_rate, max_failures_per_key=fails_per_key))
    if slow_penalty_ns > 0:
        svc.set_device_slow(1, penalty_ns=slow_penalty_ns)
    slack_ns = math.inf if slack_us is None else slack_us * 1_000.0
    puts = put_wave(nclients, objects, payload_bytes=700,
                    mean_gap_ns=2_000.0, seed=seed,
                    deadline_slack_ns=slack_ns)
    return svc, puts


@given(overload_case())
@settings(max_examples=25, deadline=None)
def test_retry_spend_never_exceeds_the_budget_bound(case):
    """Lifetime retry spend <= initial + ratio * successes — for any
    fault rate, deadline pressure and budget tuning."""
    svc, puts = _build(case)
    svc.submit_many(puts)
    results = svc.drain()
    budget = svc.overload.retry_budget
    assert budget.spent <= budget.budget_bound + 1e-9
    assert budget.spent == svc.metrics.counters.get("retries", 0)
    # Denials surface as fail-fast FAILED results, never hangs.
    denied = [r for r in results
              if "retry budget exhausted" in (r.error or "")]
    assert all(r.status is RequestStatus.FAILED for r in denied)
    assert len(results) == len(puts)


@given(overload_case())
@settings(max_examples=25, deadline=None)
def test_every_acked_byte_reads_back_across_overload(case):
    """Every COMPLETED put is readable bit-exactly afterwards — sheds
    and failures may happen, silent loss may not."""
    svc, puts = _build(case)
    svc.submit_many(puts)
    results = svc.drain()
    acked = {r.request.key: r.request.payload
             for r in results
             if r.ok and r.request.kind is RequestKind.PUT}
    # Read everything back *through the service* (hedges, brownout and
    # slow-device routing included) after the fault storm passes —
    # durability is about the bytes surviving the episode, not about
    # reads succeeding while transient faults still rage.
    svc.store.fault_hooks.clear()
    svc.submit_many([Request.get(key, arrival_ns=svc.clock_ns + 1e9)
                     for key in sorted(acked)])
    reads = [r for r in svc.drain()
             if r.request.kind is RequestKind.GET]
    assert len(reads) == len(acked)
    for r in reads:
        assert r.ok, f"acked {r.request.key!r} unreadable: {r.error}"
        assert r.value == acked[r.request.key]


@given(overload_case())
@settings(max_examples=25, deadline=None)
def test_shed_requests_do_no_work_and_results_are_complete(case):
    """Sheds are fail-fast (no latency, no retries) and every submitted
    request gets exactly one result."""
    svc, puts = _build(case)
    svc.submit_many(puts)
    results = svc.drain()
    assert len(results) == len(puts)
    for r in results:
        if r.status is RequestStatus.SHED:
            assert r.latency_ns is None and r.retries == 0
    # The adaptive limit composed with — never exceeded — the cap.
    assert svc.overload.concurrency.limit <= svc.admission.capacity_threads
    assert svc.admission.peak_threads <= svc.admission.capacity_threads
