"""The 1.1 API redesign: DialgaConfig, the uniform run() signature,
deprecation shims, RS(n, k) constructors and the façade exports."""

import warnings

import pytest

from repro import ReproDeprecationWarning
from repro.core import (
    AdaptiveCoordinator,
    CoordinatorConfig,
    DialgaConfig,
    DialgaEncoder,
    Policy,
    PolicySwitch,
)
from repro.libs import (
    ISAL,
    Cerasure,
    GeometryMismatch,
    UnsupportedWorkload,
    Zerasure,
)
from repro.simulator import HardwareConfig
from repro.simulator.counters import Counters
from repro.trace import Workload

WL = Workload.rs(9, 6, block_bytes=512, data_bytes_per_thread=16 * 1024)
HW = HardwareConfig()


# ---------------------------------------------------------- DialgaConfig

def test_dialga_config_defaults_match_old_constructor_defaults():
    cfg = DialgaConfig()
    assert cfg.adaptive and cfg.use_probe
    assert cfg.chunks == 6
    assert cfg.policy_override is None and cfg.coordinator is None


def test_dialga_config_is_frozen_and_keyword_only():
    cfg = DialgaConfig()
    with pytest.raises(AttributeError):
        cfg.chunks = 3
    with pytest.raises(TypeError):
        DialgaConfig(None, True)  # positional use must fail


def test_dialga_config_with_copies():
    cfg = DialgaConfig(chunks=2)
    cfg2 = cfg.with_(use_probe=False)
    assert cfg2.chunks == 2 and not cfg2.use_probe
    assert cfg.use_probe  # original untouched


def test_encoder_takes_config_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        enc = DialgaEncoder(6, 3, config=DialgaConfig(use_probe=False,
                                                      chunks=2))
    assert not enc.use_probe and enc.chunks == 2


# ------------------------------------------------------ constructor shim

def test_legacy_keywords_warn_and_round_trip():
    with pytest.warns(ReproDeprecationWarning, match="DialgaConfig"):
        enc = DialgaEncoder(6, 3, use_probe=False, chunks=2,
                            adaptive=False)
    assert enc.config == DialgaConfig(use_probe=False, chunks=2,
                                      adaptive=False)


def test_legacy_positional_args_warn_and_round_trip():
    # Old order: field, adaptive, chunks, ...
    with pytest.warns(ReproDeprecationWarning):
        enc = DialgaEncoder(6, 3, None, False, 4)
    assert not enc.adaptive and enc.chunks == 4


def test_legacy_coordinator_config_maps_to_coordinator_field():
    cc = CoordinatorConfig(thread_threshold=4)
    with pytest.warns(ReproDeprecationWarning):
        enc = DialgaEncoder(6, 3, coordinator_config=cc)
    assert enc.config.coordinator is cc
    assert enc.coordinator_config is cc  # compat property


def test_mixing_config_and_legacy_keywords_is_an_error():
    with pytest.raises(TypeError, match="not both"):
        DialgaEncoder(6, 3, use_probe=False, config=DialgaConfig())


def test_unknown_constructor_keyword_is_an_error():
    with pytest.raises(TypeError, match="unexpected keyword"):
        DialgaEncoder(6, 3, turbo=True)


def test_duplicate_positional_and_keyword_is_an_error():
    with pytest.raises(TypeError, match="duplicate"):
        DialgaEncoder(6, 3, None, False, adaptive=True)


def test_compat_properties_mirror_config():
    enc = DialgaEncoder(6, 3, config=DialgaConfig(
        adaptive=False, chunks=0, use_probe=False,
        policy_override=Policy(hw_prefetch=False)))
    assert enc.adaptive is False
    assert enc.chunks == 1  # clamped, as the old attribute was used
    assert enc.use_probe is False
    assert enc.policy_override == Policy(hw_prefetch=False)


# ------------------------------------------------------ uniform run()

@pytest.fixture(scope="module")
def enc():
    return DialgaEncoder(6, 3, config=DialgaConfig(use_probe=False,
                                                   chunks=2))


def test_run_positional_and_keyword_agree(enc):
    a = enc.run(WL, HW)
    b = enc.run(workload=WL, hardware=HW)
    assert a.throughput_gbps == b.throughput_gbps


def test_run_legacy_wl_hw_keywords_warn_but_agree(enc):
    baseline = enc.run(WL, HW).throughput_gbps
    with pytest.warns(ReproDeprecationWarning, match="wl="):
        via_wl = enc.run(wl=WL, hw=HW)
    assert via_wl.throughput_gbps == baseline


def test_run_double_workload_is_an_error(enc):
    with pytest.raises(TypeError, match="once"):
        enc.run(WL, wl=WL)


def test_run_missing_workload_is_an_error(enc):
    with pytest.raises(TypeError, match="workload"):
        enc.run(hardware=HW)


def test_run_unknown_keyword_is_an_error(enc):
    with pytest.raises(TypeError, match="unexpected"):
        enc.run(WL, workloud=WL)


def test_run_signature_uniform_across_libraries():
    wl = WL.with_(data_bytes_per_thread=8 * 1024)
    for lib in (ISAL(6, 3), Zerasure(6, 3), Cerasure(6, 3),
                DialgaEncoder(6, 3, config=DialgaConfig(use_probe=False,
                                                        chunks=2))):
        res = lib.run(wl, HW)
        assert res.throughput_gbps > 0, lib.name


# ------------------------------------------------------ policy pinning

def test_dialga_run_policy_pins_this_run_only(enc):
    pol = Policy(hw_prefetch=False, sw_distance=3)
    enc.run(WL, HW, policy=pol)
    assert enc.policy_log == [pol]
    assert enc.config.policy_override is None  # not persisted


def test_isal_honors_pinned_policy():
    lib = ISAL(6, 3)
    assert lib.supports_policy
    pinned = lib.run(WL, HW, policy=Policy(hw_prefetch=False,
                                           sw_distance=6))
    plain = lib.run(WL, HW)
    assert pinned.throughput_gbps != plain.throughput_gbps


def test_fixed_kernel_libraries_reject_pinned_policy():
    for lib in (Zerasure(6, 3), Cerasure(6, 3)):
        assert not lib.supports_policy
        with pytest.raises(UnsupportedWorkload, match="fixed kernels"):
            lib.run(WL, HW, policy=Policy(hw_prefetch=False))


# ------------------------------------------------- Workload constructors

def test_workload_rs_uses_paper_notation():
    wl = Workload.rs(12, 8, block_bytes=2048)
    assert (wl.k, wl.m, wl.block_bytes) == (8, 4, 2048)


def test_workload_rs_validates_geometry():
    with pytest.raises(ValueError, match="0 < k < n"):
        Workload.rs(8, 8)
    with pytest.raises(ValueError, match="0 < k < n"):
        Workload.rs(8, 0)


def test_workload_paper_uses_paper_units():
    wl = Workload.paper(28, 24, block_kb=4, threads=12, volume_mb=2)
    assert (wl.k, wl.m) == (24, 4)
    assert wl.block_bytes == 4096
    assert wl.nthreads == 12
    assert wl.data_bytes_per_thread == 2 * 1024 * 1024


# ------------------------------------------------------ GeometryMismatch

def test_geometry_mismatch_raised_and_is_a_value_error(enc):
    wrong = Workload.rs(12, 8, block_bytes=512,
                        data_bytes_per_thread=8 * 1024)
    with pytest.raises(GeometryMismatch, match="geometry"):
        enc.run(wrong, HW)
    with pytest.raises(ValueError):  # pre-1.1 handlers keep working
        enc.run(wrong, HW)


# --------------------------------------------------- policy-switch events

def test_coordinator_emits_policy_switch_events():
    wl = Workload.rs(12, 8, block_bytes=1024, nthreads=2,
                     data_bytes_per_thread=16 * 1024)
    seen = []
    coord = AdaptiveCoordinator(wl, HW, on_switch=seen.append)
    assert coord.policy.hw_prefetch  # low-pressure start
    coord.set_baseline(Counters(loads=1000, load_stall_ns=50_000.0,
                                hwpf_useless=10))
    # Contention + inefficiency together force the high-pressure flip.
    coord.observe(Counters(loads=1000, load_stall_ns=500_000.0,
                           hwpf_useless=500))
    assert coord.switches == 1
    assert len(coord.switch_events) == 1 and seen == coord.switch_events
    ev = coord.switch_events[0]
    assert isinstance(ev, PolicySwitch)
    assert ev.old.hw_prefetch and not ev.new.hw_prefetch
    assert ev.sample == 1


# ------------------------------------------------------------- façade

def test_facade_exports_the_new_surface():
    import repro

    for name in ("DialgaConfig", "PolicySwitch", "GeometryMismatch",
                 "ReproDeprecationWarning", "TransientFault",
                 "ErasureCodingService", "ServiceConfig", "Request",
                 "RequestResult", "RetryPolicy", "MetricsRegistry"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
