"""Unit tests for simulator components: cache, prefetcher, read buffer."""

import pytest

from repro.simulator import Counters, CoreCache, PMReadBuffer, StreamPrefetcher
from repro.simulator.cache import DEMAND, HWPF, SWPF
from repro.simulator.params import PrefetcherConfig


# -- CoreCache --------------------------------------------------------------

def test_cache_insert_lookup():
    c = Counters()
    cache = CoreCache(4, c)
    cache.insert(0, 10.0, DEMAND, used=True)
    assert 0 in cache
    ent = cache.lookup(0)
    assert ent.arrival_ns == 10.0
    assert cache.lookup(64) is None


def test_cache_lru_eviction_counts_useless_prefetch():
    c = Counters()
    cache = CoreCache(2, c)
    cache.insert(0, 0.0, HWPF)
    cache.insert(64, 0.0, HWPF)
    cache.insert(128, 0.0, DEMAND, used=True)  # evicts line 0 (unused HWPF)
    assert c.hwpf_useless == 1
    assert 0 not in cache and 64 in cache


def test_cache_eviction_of_used_line_not_useless():
    c = Counters()
    cache = CoreCache(1, c)
    cache.insert(0, 0.0, HWPF)
    cache.lookup(0).used = True
    cache.insert(64, 0.0, DEMAND)
    assert c.hwpf_useless == 0


def test_cache_swpf_useless_on_drain():
    c = Counters()
    cache = CoreCache(4, c)
    cache.insert(0, 0.0, SWPF)
    cache.insert(64, 0.0, SWPF)
    cache.lookup(64).used = True
    cache.drain()
    assert c.swpf_useless == 1
    assert len(cache) == 0


def test_cache_reinsert_keeps_earliest_arrival():
    c = Counters()
    cache = CoreCache(4, c)
    cache.insert(0, 100.0, HWPF)
    cache.insert(0, 50.0, SWPF)
    assert cache.lookup(0).arrival_ns == 50.0


def test_cache_capacity_validation():
    with pytest.raises(ValueError):
        CoreCache(0, Counters())


# -- StreamPrefetcher --------------------------------------------------------

def _pf(max_streams=32, train=2, dist=4, enabled=True, ramp=1):
    cfg = PrefetcherConfig(enabled=enabled, max_streams=max_streams,
                           train_threshold=train, max_distance=dist,
                           ramp_div=ramp)
    c = Counters()
    return StreamPrefetcher(cfg, c), c


def test_prefetcher_trains_on_sequential():
    pf, c = _pf()
    assert pf.on_access(0) == []          # allocate
    assert pf.on_access(64) == []         # conf 1 < threshold
    out = pf.on_access(128)               # conf 2 == threshold -> distance 1
    assert out == [192]
    assert c.hwpf_issued == 1


def test_prefetcher_distance_ramps_to_cap():
    pf, c = _pf(dist=4)
    for line in range(8):
        pf.on_access(line * 64)
    # conf is now 8 -> distance capped at 4: covers up to line+4.
    out = pf.on_access(8 * 64)
    assert out and max(out) == (8 + 4) * 64


def test_prefetcher_ramp_div_slows_distance_growth():
    fast, _ = _pf(dist=8, ramp=1)
    slow, _ = _pf(dist=8, ramp=4)
    for line in range(6):
        fast.on_access(line * 64)
        slow.on_access(line * 64)
    out_fast = fast.on_access(6 * 64)
    out_slow = slow.on_access(6 * 64)
    assert max(out_fast) > max(out_slow)


def test_prefetcher_does_not_cross_page():
    pf, c = _pf(dist=8)
    for line in range(60, 64):
        pf.on_access(line * 64)
    out = pf.on_access(63 * 64)  # same-line re-access, nothing beyond page
    assert all(addr < 4096 for addr in out)


def test_prefetcher_disabled():
    pf, c = _pf(enabled=False)
    for line in range(8):
        assert pf.on_access(line * 64) == []
    assert c.hwpf_issued == 0


def test_prefetcher_stream_table_overflow_kills_coverage():
    """The paper's Obs. 3 cliff: > max_streams round-robin streams never train."""
    pf, c = _pf(max_streams=4, train=2)
    pages = 6
    issued = 0
    for row in range(8):
        for p in range(pages):
            issued += len(pf.on_access(p * 4096 + row * 64))
    assert issued == 0
    assert c.streams_evicted_untrained > 0


def test_prefetcher_within_capacity_trains():
    pf, c = _pf(max_streams=8, train=2)
    pages = 6
    issued = 0
    for row in range(8):
        for p in range(pages):
            issued += len(pf.on_access(p * 4096 + row * 64))
    assert issued > 0


def test_prefetcher_shuffled_access_never_trains():
    pf, c = _pf()
    # Non-sequential (stride 7) lines within one page.
    for i in range(20):
        line = (i * 7) % 64
        assert pf.on_access(line * 64) == []
    assert c.hwpf_issued == 0


def test_prefetcher_reset():
    pf, _ = _pf()
    pf.on_access(0)
    assert pf.live_streams == 1
    pf.reset()
    assert pf.live_streams == 0


# -- PMReadBuffer -------------------------------------------------------------

def test_readbuffer_hit_after_fill():
    c = Counters()
    rb = PMReadBuffer(4, 256, c)
    assert not rb.access(0)
    rb.fill(0)
    assert rb.access(64)   # same XPLine
    assert not rb.access(256)  # next XPLine
    assert c.buffer_hits == 1
    assert c.buffer_misses == 2


def test_readbuffer_thrash_counting():
    c = Counters()
    rb = PMReadBuffer(2, 256, c)
    rb.fill(0)
    rb.fill(256)
    rb.fill(512)  # evicts XPLine 0, which was used once (fill only)
    assert c.buffer_evictions == 1
    assert c.buffer_evictions_unused == 1


def test_readbuffer_used_eviction_not_thrash():
    c = Counters()
    rb = PMReadBuffer(1, 256, c)
    rb.fill(0)
    rb.access(64)  # hit -> used twice
    rb.fill(256)
    assert c.buffer_evictions == 1
    assert c.buffer_evictions_unused == 0


def test_readbuffer_lru_refresh_on_hit():
    c = Counters()
    rb = PMReadBuffer(2, 256, c)
    rb.fill(0)
    rb.fill(256)
    rb.access(0)      # refresh XPLine 0
    rb.fill(512)      # should evict XPLine 1 (LRU), not 0
    assert rb.access(0)
    assert not rb.access(256)


def test_readbuffer_capacity_validation():
    with pytest.raises(ValueError):
        PMReadBuffer(0, 256, Counters())


# -- Counters ------------------------------------------------------------------

def test_counters_snapshot_delta():
    c = Counters()
    c.loads = 10
    snap = c.snapshot()
    c.loads = 25
    assert c.delta(snap).loads == 15


def test_counters_merge():
    a, b = Counters(), Counters()
    a.loads, b.loads = 3, 4
    a.merge(b)
    assert a.loads == 7


def test_counters_derived_metrics():
    c = Counters()
    assert c.useless_hwpf_ratio == 0.0
    c.hwpf_issued, c.hwpf_useless = 10, 3
    assert c.useless_hwpf_ratio == pytest.approx(0.3)
    c.loads, c.load_stall_ns = 4, 100.0
    assert c.avg_load_latency_ns == 25.0
    c.app_read_bytes, c.media_read_bytes = 100, 150
    assert c.media_read_amplification == 1.5


def test_counter_sampler_period():
    from repro.simulator.counters import CounterSampler
    c = Counters()
    s = CounterSampler(c, period_ns=1000.0)
    c.loads = 5
    assert s.maybe_sample(500.0) is None
    d = s.maybe_sample(1500.0)
    assert d is not None and d.loads == 5
    c.loads = 8
    d2 = s.maybe_sample(2600.0)
    assert d2.loads == 3
