"""The repo's scripts must stay importable/runnable (docs reference them)."""

import pathlib
import subprocess
import sys

SCRIPTS = pathlib.Path(__file__).parent.parent / "scripts"


def test_all_scripts_compile():
    for script in SCRIPTS.glob("*.py"):
        compile(script.read_text(), str(script), "exec")


def test_gen_api_docs_renders(tmp_path):
    out = tmp_path / "api.md"
    proc = subprocess.run(
        [sys.executable, str(SCRIPTS / "gen_api_docs.py"), str(out)],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    text = out.read_text()
    assert "## `repro.core`" in text
    assert "DialgaEncoder" in text


def test_run_all_script_is_executable():
    sh = SCRIPTS / "run_all.sh"
    assert sh.exists()
    assert sh.stat().st_mode & 0o111
