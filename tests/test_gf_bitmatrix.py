"""Unit tests for bitmatrix projection of GF elements."""

import numpy as np
import pytest

from repro.gf import element_bitmatrix, matrix_to_bitmatrix, bitmatrix_xor_count, gf4, gf8


def _bits(v, w):
    return np.array([(v >> i) & 1 for i in range(w)], dtype=np.uint8)


@pytest.mark.parametrize("field", [gf4, gf8], ids=["gf4", "gf8"])
def test_bitmatrix_multiplies_like_field(field):
    rng = np.random.default_rng(0)
    for _ in range(50):
        e = int(rng.integers(field.order))
        v = int(rng.integers(field.order))
        M = element_bitmatrix(field, e)
        got = (M @ _bits(v, field.w)) % 2
        assert np.array_equal(got, _bits(int(field.mul(e, v)), field.w))


def test_bitmatrix_of_one_is_identity():
    assert np.array_equal(element_bitmatrix(gf8, 1), np.eye(8, dtype=np.uint8))


def test_bitmatrix_of_zero_is_zero():
    assert not element_bitmatrix(gf8, 0).any()


def test_bitmatrix_is_additive_homomorphism():
    a, b = 23, 57
    Ma = element_bitmatrix(gf8, a)
    Mb = element_bitmatrix(gf8, b)
    assert np.array_equal(Ma ^ Mb, element_bitmatrix(gf8, a ^ b))


def test_bitmatrix_is_multiplicative_homomorphism():
    a, b = 23, 57
    Ma = element_bitmatrix(gf8, a)
    Mb = element_bitmatrix(gf8, b)
    prod = (Ma @ Mb) % 2
    assert np.array_equal(prod, element_bitmatrix(gf8, int(gf8.mul(a, b))))


def test_matrix_to_bitmatrix_shape_and_blocks():
    A = np.array([[1, 2], [3, 4], [0, 1]], dtype=np.uint8)
    B = matrix_to_bitmatrix(gf8, A)
    assert B.shape == (24, 16)
    assert np.array_equal(B[:8, :8], np.eye(8, dtype=np.uint8))
    assert np.array_equal(B[:8, 8:16], element_bitmatrix(gf8, 2))
    assert not B[16:24, :8].any()


def test_bitmatrix_xor_count():
    # identity: each row has 1 one -> 0 xors
    assert bitmatrix_xor_count(np.eye(8, dtype=np.uint8)) == 0
    M = np.ones((2, 4), dtype=np.uint8)
    assert bitmatrix_xor_count(M) == 2 * 3
    M[1] = 0
    assert bitmatrix_xor_count(M) == 3
