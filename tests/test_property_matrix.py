"""Property-based tests: GF linear algebra and coding matrices."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gf import gf8, GFPolynomial
from repro.matrix import (
    cauchy_matrix, gf_invert_matrix, gf_rank, systematic_vandermonde,
)
from repro.matrix.invert import SingularMatrixError


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30)
def test_random_invertible_matrices_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    A = rng.integers(0, 256, (n, n)).astype(np.uint8)
    try:
        Ainv = gf_invert_matrix(gf8, A)
    except SingularMatrixError:
        assert gf_rank(gf8, A) < n
        return
    I = np.eye(n, dtype=np.uint8)
    assert np.array_equal(gf8.matmul(A, Ainv), I)
    assert np.array_equal(gf8.matmul(Ainv, A), I)


@given(st.integers(min_value=2, max_value=16),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=20)
def test_vandermonde_generator_always_systematic_and_full_rank(k, m):
    G = systematic_vandermonde(gf8, k, m)
    assert np.array_equal(G[:k], np.eye(k, dtype=np.uint8))
    assert gf_rank(gf8, G) == k


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=25)
def test_cauchy_submatrices_always_invertible(seed, r, c):
    """Every square submatrix of a Cauchy matrix is invertible — the
    property that makes Cauchy generators MDS."""
    rng = np.random.default_rng(seed)
    pts = rng.choice(256, size=r + c, replace=False)
    C = cauchy_matrix(gf8, pts[:r], pts[r:])
    n = min(r, c)
    rows = sorted(rng.choice(r, size=n, replace=False))
    cols = sorted(rng.choice(c, size=n, replace=False))
    sub = C[np.ix_(rows, cols)]
    assert gf_rank(gf8, sub) == n


@given(st.lists(st.integers(0, 255), min_size=1, max_size=6, unique=True),
       st.integers(min_value=0, max_value=255))
@settings(max_examples=40)
def test_polynomial_from_roots_vanishes_exactly_on_roots(roots, probe):
    p = GFPolynomial.from_roots(gf8, roots)
    for r in roots:
        assert p(r) == 0
    if probe not in roots:
        # a polynomial of degree len(roots) has no other roots
        assert p(probe) != 0


@given(st.lists(st.integers(0, 255), min_size=1, max_size=5),
       st.lists(st.integers(0, 255), min_size=1, max_size=5),
       st.integers(min_value=0, max_value=255))
@settings(max_examples=40)
def test_polynomial_ring_homomorphism(ca, cb, x):
    """(p+q)(x) == p(x)+q(x) and (p*q)(x) == p(x)*q(x)."""
    p, q = GFPolynomial(gf8, ca), GFPolynomial(gf8, cb)
    assert (p + q)(x) == p(x) ^ q(x)
    assert (p * q)(x) == gf8.mul(p(x), q(x))
