"""Property-based tests: RS/LRC round-trips and schedule equivalence."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codes import LRCCode, RSCode
from repro.gf import gf8, matrix_to_bitmatrix
from repro.xorsched import bitslice, cse_optimize, encode_bitmatrix, unbitslice


@st.composite
def rs_case(draw):
    k = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=1, max_value=4))
    blen = draw(st.sampled_from([8, 16, 64]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    erase_count = draw(st.integers(min_value=1, max_value=m))
    return k, m, blen, seed, erase_count


@given(rs_case())
@settings(max_examples=40, deadline=None)
def test_rs_decode_recovers_any_erasure_pattern(case):
    """Fundamental MDS property on random data and erasure patterns."""
    k, m, blen, seed, erase_count = case
    rng = np.random.default_rng(seed)
    code = RSCode(k, m)
    data = rng.integers(0, 256, (k, blen)).astype(np.uint8)
    stripe = code.encode(data)
    erased = sorted(rng.choice(k + m, size=erase_count, replace=False).tolist())
    out = code.decode(stripe.erase(erased), erased)
    blocks = stripe.blocks()
    for e in erased:
        assert np.array_equal(out[e], blocks[e])


@given(rs_case())
@settings(max_examples=25, deadline=None)
def test_rs_update_parity_equals_reencode(case):
    k, m, blen, seed, _ = case
    rng = np.random.default_rng(seed)
    code = RSCode(k, m)
    data = rng.integers(0, 256, (k, blen)).astype(np.uint8)
    parity = code.encode_blocks(data)
    idx = int(rng.integers(k))
    new_block = rng.integers(0, 256, blen).astype(np.uint8)
    updated = code.update_parity(parity, idx, data[idx], new_block)
    data[idx] = new_block
    assert np.array_equal(updated, code.encode_blocks(data))


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_bitmatrix_schedule_equals_table_encode(seed, k, m):
    """XOR-schedule execution is byte-identical to GF matmul."""
    rng = np.random.default_rng(seed)
    code = RSCode(k, m, matrix="cauchy")
    data = rng.integers(0, 256, (k, 32)).astype(np.uint8)
    bm = matrix_to_bitmatrix(gf8, code.parity_rows)
    sched = cse_optimize(bm, k, m, 8)
    assert np.array_equal(encode_bitmatrix(gf8, bm, data, schedule=sched),
                          code.encode_blocks(data))


@given(st.lists(st.integers(0, 255), min_size=8, max_size=256).filter(
    lambda l: len(l) % 8 == 0))
def test_bitslice_roundtrip(block):
    arr = np.array(block, dtype=np.uint8)
    assert np.array_equal(unbitslice(bitslice(arr)), arr)


@st.composite
def lrc_case(draw):
    l = draw(st.integers(min_value=1, max_value=4))
    group = draw(st.integers(min_value=1, max_value=4))
    k = l * group
    m = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return k, m, l, seed


@given(lrc_case())
@settings(max_examples=30, deadline=None)
def test_lrc_single_erasure_always_locally_repairable(case):
    k, m, l, seed = case
    rng = np.random.default_rng(seed)
    code = LRCCode(k, m, l)
    data = rng.integers(0, 256, (k, 16)).astype(np.uint8)
    gp, lp = code.encode(data)
    blocks = {i: data[i] for i in range(k)}
    blocks.update({k + i: gp[i] for i in range(m)})
    blocks.update({k + m + i: lp[i] for i in range(l)})
    victim = int(rng.integers(k))
    avail = {i: b for i, b in blocks.items() if i != victim}
    got = code.repair_local(code.group_of(victim), avail)
    assert np.array_equal(got, data[victim])


@given(lrc_case())
@settings(max_examples=25, deadline=None)
def test_lrc_decode_handles_m_erasures(case):
    k, m, l, seed = case
    rng = np.random.default_rng(seed)
    code = LRCCode(k, m, l)
    data = rng.integers(0, 256, (k, 16)).astype(np.uint8)
    gp, lp = code.encode(data)
    blocks = {i: data[i] for i in range(k)}
    blocks.update({k + i: gp[i] for i in range(m)})
    blocks.update({k + m + i: lp[i] for i in range(l)})
    erased = sorted(rng.choice(k + m, size=m, replace=False).tolist())
    avail = {i: b for i, b in blocks.items() if i not in erased}
    out = code.decode(avail, erased)
    for e in erased:
        assert np.array_equal(out[e], blocks[e])
