"""Overload control: deadline admission, AIMD concurrency, retry
budgets, priority shedding, brownout and hedged reads."""

import math

import pytest

from repro.chaos import OVERLOAD_CAMPAIGNS, CampaignEngine
from repro.pmstore import FaultInjector
from repro.service import (
    BatchKey,
    BrownoutController,
    ConcurrencyController,
    ErasureCodingService,
    OverloadConfig,
    OverloadManager,
    Priority,
    Request,
    RequestKind,
    RequestQueue,
    RetryBudget,
    RetryPolicy,
    ServiceConfig,
    get_wave,
    put_wave,
)
from repro.service.request import RequestStatus


def _overload(**over) -> OverloadConfig:
    return OverloadConfig(**over)


def _svc(k=4, m=3, *, overload=None, **cfg) -> ErasureCodingService:
    config = ServiceConfig(overload=overload, **cfg)
    return ErasureCodingService(k, m, block_bytes=512, config=config)


# --------------------------------------------------------------- config

def test_overload_config_validates_knobs():
    for bad in (dict(target_batch_latency_ns=0.0),
                dict(aimd_decrease=1.0),
                dict(aimd_increase=0.0),
                dict(min_concurrency=0),
                dict(retry_budget_initial=10.0, retry_budget_cap=5.0),
                dict(brownout_enter_pressure=0.2,
                     brownout_exit_pressure=0.5),
                dict(brownout_enter_after=0),
                dict(hedge_quantile=1.0),
                dict(ewma_alpha=0.0)):
        with pytest.raises(ValueError):
            _overload(**bad)
    assert _overload().deadline_admission


# --------------------------------------------------------- retry budget

def test_retry_budget_spends_and_denies():
    b = RetryBudget(initial=2.0, ratio=0.5, cap=3.0)
    assert b.try_spend() and b.try_spend()
    assert not b.try_spend()          # bucket empty -> denied
    assert (b.spent, b.denied) == (2, 1)
    for _ in range(2):
        b.on_success()                # 2 * 0.5 = one whole token back
    assert b.try_spend()
    assert b.spent == 3


def test_retry_budget_saturates_at_cap_and_tracks_bound():
    b = RetryBudget(initial=1.0, ratio=1.0, cap=2.0)
    for _ in range(10):
        b.on_success()
    assert b.tokens == 2.0            # capped, not 11
    assert b.budget_bound == 1.0 + 1.0 * 10
    with pytest.raises(ValueError):
        RetryBudget(initial=5.0, ratio=0.1, cap=1.0)


# ------------------------------------------------------------------ aimd

def test_aimd_additive_increase_multiplicative_decrease():
    c = ConcurrencyController(16, target_ns=100.0, increase=2.0,
                              decrease=0.5, floor=2)
    c._limit = 8.0
    c.observe(50.0)                   # on target -> +2
    assert c.limit == 10 and c.increases == 1
    c.observe(500.0)                  # over target -> x0.5
    assert c.limit == 5 and c.decreases == 1
    for _ in range(10):
        c.observe(500.0)
    assert c.limit == 2               # clamped at the floor
    for _ in range(50):
        c.observe(50.0)
    assert c.limit == 16              # clamped at the Eq. (1) capacity


def test_aimd_rejects_bad_geometry():
    with pytest.raises(ValueError):
        ConcurrencyController(0, target_ns=1.0)
    with pytest.raises(ValueError):
        ConcurrencyController(4, target_ns=1.0, floor=5)


# -------------------------------------------------------------- brownout

def test_brownout_hysteresis_enter_and_exit():
    b = BrownoutController(enter_after=2, exit_after=3)
    assert b.observe(True, 1.0) is None and not b.active
    assert b.observe(True, 2.0) == "enter" and b.active
    # A saturated blip resets the clear streak.
    assert b.observe(False, 3.0) is None
    assert b.observe(True, 4.0) is None and b.active
    for t in (5.0, 6.0):
        assert b.observe(False, t) is None
    assert b.observe(False, 7.0) == "exit" and not b.active
    assert [kind for _, kind in b.transitions] == ["enter", "exit"]


# ----------------------------------------------------- priority eviction

def test_queue_evicts_lowest_priority_latest_arrival():
    q = RequestQueue(max_depth=4)
    fg = Request.get("fg")
    wr = Request.put("wr", b"x")
    bg1 = Request.encode(1)
    bg2 = Request.encode(2)
    for req in (fg, bg1, wr, bg2):
        q.push(BatchKey(req.kind, 4, 2, 512), req)
    # Strictly-lower-priority victim, latest arrival within the class.
    key, victim = q.evict_lower_priority(than=Priority.FOREGROUND)
    assert victim is bg2 and q.depth == 3
    _, victim = q.evict_lower_priority(than=Priority.FOREGROUND)
    assert victim is bg1
    _, victim = q.evict_lower_priority(than=Priority.FOREGROUND)
    assert victim is wr
    # Nothing strictly below FOREGROUND remains.
    assert q.evict_lower_priority(than=Priority.FOREGROUND) is None
    assert q.depth == 1


def test_priority_defaults_read_over_write_over_bulk():
    assert Request.get("a").resolved_priority is Priority.FOREGROUND
    assert Request.put("a", b"").resolved_priority is Priority.NORMAL
    assert Request.encode().resolved_priority is Priority.BACKGROUND
    explicit = Request.get("a", priority=Priority.BACKGROUND)
    assert explicit.resolved_priority is Priority.BACKGROUND


# ------------------------------------------------------ manager / admit

def test_manager_sheds_infeasible_deadline_at_enqueue():
    mgr = OverloadManager(_overload(), capacity_threads=8,
                          base_latency_ns=1_000.0)
    tight = Request.put("a", b"x", deadline_ns=500.0)
    decision = mgr.admit(tight, 0.0, queue_depth=0, max_batch=8,
                         active_threads=0, threads_per_job=1)
    assert decision is not None and decision.reason == "deadline"
    loose = Request.put("a", b"x", deadline_ns=1e9)
    assert mgr.admit(loose, 0.0, queue_depth=0, max_batch=8,
                     active_threads=0, threads_per_job=1) is None
    # No deadline -> never shed on the deadline path.
    free = Request.put("a", b"x")
    assert mgr.admit(free, 0.0, queue_depth=0, max_batch=8,
                     active_threads=0, threads_per_job=1) is None


def test_manager_brownout_sheds_background_only():
    mgr = OverloadManager(_overload(), capacity_threads=8)
    mgr.brownout.active = True
    bg = Request.encode(1)
    fg = Request.get("a")
    shed = mgr.admit(bg, 0.0, queue_depth=0, max_batch=8,
                     active_threads=0, threads_per_job=1)
    assert shed is not None and shed.reason == "brownout"
    assert mgr.admit(fg, 0.0, queue_depth=0, max_batch=8,
                     active_threads=0, threads_per_job=1) is None


def test_estimate_grows_with_backlog_and_shrinking_limit():
    mgr = OverloadManager(_overload(), capacity_threads=48,
                          base_latency_ns=10_000.0)
    idle = mgr.estimate_finish_ns(0.0, queue_depth=0, max_batch=8,
                                  active_threads=0, threads_per_job=1)
    busy = mgr.estimate_finish_ns(0.0, queue_depth=30, max_batch=8,
                                  active_threads=48, threads_per_job=1)
    assert busy > idle > 0.0
    mgr.concurrency._limit = 1.0      # collapsed limit -> fewer slots
    collapsed = mgr.estimate_finish_ns(0.0, queue_depth=30, max_batch=8,
                                       active_threads=48,
                                       threads_per_job=1)
    assert collapsed > busy


# -------------------------------------------------- service integration

def test_deadline_shed_is_fail_fast_and_counted():
    svc = _svc(overload=_overload(), max_queue_depth=8)
    svc.overload.ewma_batch_ns = 1e6  # learned: batches cost ~1ms
    svc.submit(Request.put("a", b"x" * 600, deadline_ns=1_000.0))
    results = svc.drain()
    assert [r.status for r in results] == [RequestStatus.SHED]
    assert results[0].latency_ns is None   # no decode work spent
    assert svc.metrics.counters["shed_total"] == 1
    assert svc.metrics.counters["shed_deadline"] == 1


def test_full_queue_evicts_background_for_foreground():
    # One batch slot as wide as the whole Eq. (1) cap: the first encode
    # occupies it, the second fills the depth-1 queue, and the arriving
    # foreground GET evicts the queued background job instead of being
    # turned away itself.
    svc = _svc(overload=_overload(), max_queue_depth=1, max_batch=1,
               threads_per_job=48)
    svc.submit_many([Request.encode(1, arrival_ns=0.0),
                     Request.encode(1, arrival_ns=0.0),
                     Request.get("missing", arrival_ns=0.0)])
    results = svc.drain()
    shed = [r for r in results if r.status is RequestStatus.SHED]
    assert len(shed) == 1
    assert shed[0].request.kind is RequestKind.ENCODE
    assert svc.metrics.counters["shed_priority"] == 1


def test_without_overload_full_queue_rejects_the_arrival():
    svc = _svc(max_queue_depth=1, max_batch=1, threads_per_job=48)
    svc.submit_many([Request.encode(1, arrival_ns=0.0),
                     Request.encode(1, arrival_ns=0.0),
                     Request.get("nope", arrival_ns=0.0)])
    results = svc.drain()
    rejected = [r for r in results if r.status is RequestStatus.REJECTED]
    assert len(rejected) == 1
    assert rejected[0].request.kind is RequestKind.GET
    assert "shed_total" not in svc.metrics.counters


def test_retry_budget_denial_fails_fast(monkeypatch):
    overload = _overload(retry_budget_initial=0.0,
                         retry_budget_ratio=0.0,
                         retry_budget_cap=0.0)
    svc = _svc(overload=overload,
               retry=RetryPolicy(max_attempts=5, base_delay_ns=100.0,
                                 seed=7))
    inj = FaultInjector(svc.store, seed=3)
    svc.store.add_fault_hook(inj.transient_hook(rate=1.0,
                                                max_failures_per_key=3))
    svc.submit(Request.put("a", b"y" * 600))
    (res,) = svc.drain()
    assert res.status is RequestStatus.FAILED
    assert "retry budget exhausted" in res.error
    assert res.retries == 0
    assert svc.metrics.counters["retry_budget_denied"] >= 1
    assert svc.overload.retry_budget.denied >= 1


def test_successes_refill_the_retry_budget():
    svc = _svc(overload=_overload(retry_budget_initial=1.0,
                                  retry_budget_ratio=0.5,
                                  retry_budget_cap=2.0))
    svc.submit_many(put_wave(4, 1, payload_bytes=600, seed=0))
    results = svc.drain()
    assert all(r.ok for r in results)
    budget = svc.overload.retry_budget
    assert budget.successes == len(results)
    assert budget.spent <= budget.budget_bound


def test_slow_device_hedge_wins_and_caps_tail():
    overload = _overload(hedge_min_delay_ns=1_000.0, hedge_min_samples=1)
    svc = _svc(overload=overload)
    svc.submit_many(put_wave(6, 2, payload_bytes=600, seed=1))
    svc.submit_many(get_wave(6, 2, start_ns=1e6, seed=2))
    svc.drain()
    svc.set_device_slow(1, penalty_ns=5e6)
    svc.submit_many(get_wave(6, 2, start_ns=svc.clock_ns + 10.0, seed=3))
    results = svc.drain()
    gets = [r for r in results if r.request.kind is RequestKind.GET]
    assert all(r.ok for r in gets)
    assert svc.metrics.counters["hedges_issued"] > 0
    assert svc.metrics.counters["hedges_won"] > 0
    assert any(r.degraded for r in gets)    # hedge served degraded
    # Hedge-won latency beat the 5 ms penalty path.
    assert all(r.latency_ns < 5e6 for r in gets if r.degraded)


def test_slow_device_marks_expire_and_clear():
    svc = _svc(overload=_overload())
    svc.set_device_slow(0, penalty_ns=1e6, until_ns=50.0)
    assert svc._slow_penalty_ns() == 1e6
    svc.clock_ns = 100.0
    assert svc._slow_penalty_ns() == 0.0    # expired with the clock
    svc.set_device_slow(2, penalty_ns=2e6)
    svc.clear_device_slow(2)
    assert svc._slow_penalty_ns() == 0.0
    assert svc.metrics.counters["slow_device_marks"] == 2


def test_aimd_limit_never_exceeds_eq1_cap_under_campaign():
    engine = CampaignEngine(
        OVERLOAD_CAMPAIGNS["retry_storm_overload"](seed=0),
        config=ServiceConfig(
            max_queue_depth=32, max_batch=8,
            retry=RetryPolicy(max_attempts=8, base_delay_ns=1e6, seed=0),
            overload=_overload(target_batch_latency_ns=200_000.0)))
    engine.run()
    svc = engine.service
    assert svc.overload.concurrency.limit <= svc.admission.capacity_threads
    assert svc.admission.peak_threads <= svc.admission.capacity_threads
    assert svc.overload.concurrency.decreases > 0  # the storm bit


def test_brownout_cycle_emits_counters_and_transitions():
    engine = CampaignEngine(
        OVERLOAD_CAMPAIGNS["slow_device_tail"](seed=0),
        config=ServiceConfig(
            max_queue_depth=32, max_batch=8,
            retry=RetryPolicy(max_attempts=8, base_delay_ns=1e6, seed=0),
            overload=_overload(target_batch_latency_ns=200_000.0,
                               brownout_enter_after=3,
                               brownout_exit_after=4,
                               brownout_enter_pressure=0.6)))
    report = engine.run()
    svc = engine.service
    kinds = [kind for _, kind in svc.overload.brownout.transitions]
    assert "enter" in kinds and "exit" in kinds
    assert svc.metrics.counters["brownout_enters"] >= 1
    assert svc.metrics.counters["brownout_exits"] >= 1
    assert report.audit.clean          # degraded serving lost no bytes


def test_no_overload_config_means_byte_identical_legacy_behavior():
    def run(config):
        svc = ErasureCodingService(4, 3, block_bytes=512, config=config)
        svc.submit_many(put_wave(12, 3, payload_bytes=700, seed=5))
        results = svc.drain()
        return ([(r.request.key, r.status, r.latency_ns) for r in results],
                dict(svc.metrics.counters))
    legacy = run(ServiceConfig(max_queue_depth=8))
    explicit_none = run(ServiceConfig(max_queue_depth=8, overload=None))
    assert legacy == explicit_none
    assert "shed_total" not in legacy[1]
    assert not any(k.startswith("hedges") for k in legacy[1])


def test_deadline_misses_counted_for_completed_but_late_requests():
    overload = _overload(deadline_admission=False)  # let them through
    svc = _svc(overload=overload)
    svc.submit(Request.put("late", b"z" * 600, deadline_ns=1.0))
    (res,) = svc.drain()
    assert res.ok                       # completed, but past deadline
    assert svc.metrics.counters["deadline_misses"] == 1
