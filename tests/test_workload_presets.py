"""Tests for the production-workload presets."""

import pytest

from repro import DialgaEncoder, HardwareConfig, ISAL
from repro.bench.workloads import PRODUCTION_WORKLOADS, get_workload


def test_all_presets_are_valid_workloads():
    for name, (desc, wl) in PRODUCTION_WORKLOADS.items():
        assert wl.k >= 1 and desc, name


def test_lookup_and_error():
    wl = get_workload("f4")
    assert (wl.k, wl.m) == (10, 4)
    with pytest.raises(KeyError, match="available"):
        get_workload("s3")


def test_vast_width_matches_paper_citation():
    assert get_workload("vast_wide").k == 154


def test_azure_preset_is_lrc():
    assert get_workload("azure_lrc").lrc_l == 2


def test_degraded_read_is_decode():
    wl = get_workload("degraded_read")
    assert wl.op == "decode" and wl.erasures == 1


@pytest.mark.parametrize("name", ["f4_smallobj", "ceph_default",
                                  "degraded_read"])
def test_presets_runnable_end_to_end(name):
    wl = get_workload(name).with_(data_bytes_per_thread=32 * 1024)
    res = ISAL(wl.k, wl.m).run(wl, HardwareConfig())
    assert res.throughput_gbps > 0


def test_dialga_wins_on_every_runnable_preset():
    hw = HardwareConfig()
    for name in ("f4_smallobj", "ceph_default", "azure_lrc"):
        wl = get_workload(name).with_(data_bytes_per_thread=32 * 1024,
                                      nthreads=1)
        isal = ISAL(wl.k, wl.m).run(wl, hw).throughput_gbps
        dialga = DialgaEncoder(wl.k, wl.m, use_probe=False).run(wl, hw).throughput_gbps
        assert dialga > isal, name
