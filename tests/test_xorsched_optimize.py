"""Unit tests for CSE schedule optimization and matrix searches."""

import numpy as np
import pytest

from repro.gf import gf8, matrix_to_bitmatrix
from repro.codes import RSCode
from repro.xorsched import (
    naive_schedule,
    cse_optimize,
    encode_bitmatrix,
    anneal_cauchy_points,
    greedy_cauchy_points,
    decompose_generator,
    encode_decomposed,
)
from repro.matrix import gf_rank


def _bitmatrix(k, m, matrix="cauchy"):
    code = RSCode(k, m, matrix=matrix)
    return code, matrix_to_bitmatrix(gf8, code.parity_rows)


def test_cse_reduces_xor_count():
    code, bm = _bitmatrix(6, 3)
    naive = naive_schedule(bm, 6, 3, 8)
    opt = cse_optimize(bm, 6, 3, 8)
    assert opt.xor_count < naive.xor_count
    assert opt.num_temps > 0


def test_cse_preserves_results():
    code, bm = _bitmatrix(5, 3)
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, (5, 64)).astype(np.uint8)
    opt = cse_optimize(bm, 5, 3, 8)
    got = encode_bitmatrix(gf8, bm, data, schedule=opt)
    assert np.array_equal(got, code.encode_blocks(data))


def test_cse_max_temps_respected():
    _, bm = _bitmatrix(6, 3)
    opt = cse_optimize(bm, 6, 3, 8, max_temps=2)
    assert opt.num_temps <= 2


def test_cse_shape_validation():
    with pytest.raises(ValueError):
        cse_optimize(np.zeros((10, 10), np.uint8), 2, 2, 8)


def test_cse_identity_matrix_noop():
    bm = np.eye(8, dtype=np.uint8)
    opt = cse_optimize(bm, 1, 1, 8)
    assert opt.xor_count == 0
    assert opt.num_temps == 0


def test_anneal_improves_over_default():
    res = anneal_cauchy_points(gf8, 6, 3, budget=400, seed=1)
    from repro.matrix.cauchy import cauchy_matrix
    from repro.gf.bitmatrix import element_bitmatrix
    base = cauchy_matrix(gf8, range(6, 9), range(6))
    base_ones = sum(int(element_bitmatrix(gf8, int(e)).sum()) for e in base.ravel())
    assert res.energy <= base_ones
    assert res.evaluations <= 400


def test_anneal_matrix_is_mds():
    res = anneal_cauchy_points(gf8, 5, 3, budget=300, seed=2)
    G = np.vstack([np.eye(5, dtype=np.uint8), res.parity])
    rng = np.random.default_rng(0)
    for _ in range(10):
        rows = sorted(rng.choice(8, size=5, replace=False))
        assert gf_rank(gf8, G[rows]) == 5


def test_anneal_wide_stripe_does_not_converge():
    res = anneal_cauchy_points(gf8, 48, 4, budget=300, plateau=250, seed=3)
    assert not res.converged


def test_anneal_narrow_stripe_converges():
    res = anneal_cauchy_points(gf8, 4, 2, budget=3000, plateau=150, seed=4)
    assert res.converged


def test_anneal_param_bound():
    with pytest.raises(ValueError):
        anneal_cauchy_points(gf8, 250, 10)


def test_greedy_points_valid_and_mds():
    x, y, parity = greedy_cauchy_points(gf8, 6, 3)
    assert len(set(x) | set(y)) == 9  # disjoint + distinct
    G = np.vstack([np.eye(6, dtype=np.uint8), parity])
    rng = np.random.default_rng(5)
    for _ in range(10):
        rows = sorted(rng.choice(9, size=6, replace=False))
        assert gf_rank(gf8, G[rows]) == 6


def test_greedy_beats_unoptimized_default():
    from repro.matrix.cauchy import cauchy_matrix
    from repro.gf.bitmatrix import element_bitmatrix
    _, _, parity = greedy_cauchy_points(gf8, 8, 4)
    ones = sum(int(element_bitmatrix(gf8, int(e)).sum()) for e in parity.ravel())
    base = cauchy_matrix(gf8, range(8, 12), range(8))
    base_ones = sum(int(element_bitmatrix(gf8, int(e)).sum()) for e in base.ravel())
    assert ones < base_ones


def test_greedy_candidate_limit():
    x, y, parity = greedy_cauchy_points(gf8, 4, 2, candidate_limit=16)
    assert len(y) == 4


def test_decompose_covers_all_columns():
    code = RSCode(10, 4)
    groups = decompose_generator(code.parity_rows, 4)
    cols = [c for g, _ in groups for c in g]
    assert cols == list(range(10))
    assert [len(g) for g, _ in groups] == [4, 4, 2]


def test_decompose_group_size_validation():
    with pytest.raises(ValueError):
        decompose_generator(np.zeros((2, 4), np.uint8), 0)


@pytest.mark.parametrize("group_size", [1, 3, 8, 100])
def test_decomposed_encode_identical(group_size):
    code = RSCode(8, 4)
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, (8, 32)).astype(np.uint8)
    got = encode_decomposed(gf8, code.parity_rows, data, group_size)
    assert np.array_equal(got, code.encode_blocks(data))


def test_anneal_energy_stable_across_seeds():
    """Different seeds must land within a modest band of each other —
    the search is robust, not luck."""
    energies = [anneal_cauchy_points(gf8, 6, 3, budget=600, seed=s).energy
                for s in range(4)]
    assert max(energies) <= 1.25 * min(energies), energies


def test_greedy_search_finds_sparser_matrices_than_anneal():
    """Cerasure's claim (ICCD'23): its deterministic greedy search
    matches or beats Zerasure's stochastic one — here it finds strictly
    sparser bitmatrices at small geometries."""
    from repro.gf.bitmatrix import element_bitmatrix
    res = anneal_cauchy_points(gf8, 5, 2, budget=2000, seed=0)
    _, _, greedy_parity = greedy_cauchy_points(gf8, 5, 2)
    greedy_ones = sum(int(element_bitmatrix(gf8, int(e)).sum())
                      for e in greedy_parity.ravel())
    assert greedy_ones <= res.energy
