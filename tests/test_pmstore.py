"""Tests for the erasure-coded PM store, fault injection and scrubbing."""

import numpy as np
import pytest

from repro import DialgaEncoder
from repro.pmstore import FaultInjector, PMStore, Scrubber


def _store(**kw):
    defaults = dict(k=4, m=2, block_bytes=256)
    defaults.update(kw)
    return PMStore(**defaults)


# -- basic object API ----------------------------------------------------------

def test_put_get_roundtrip():
    s = _store()
    s.put("a", b"hello pm world")
    assert s.get("a") == b"hello pm world"
    assert s.stats.puts == 1 and s.stats.gets == 1


def test_multiple_objects_pack_into_stripes():
    s = _store()
    for i in range(6):
        s.put(f"obj{i}", bytes([i]) * 100)
    assert s.num_stripes == 1  # 600 B < 1024 B capacity
    for i in range(6):
        assert s.get(f"obj{i}") == bytes([i]) * 100


def test_new_stripe_allocated_when_full():
    s = _store()
    s.put("big1", b"x" * 900)
    s.put("big2", b"y" * 900)
    assert s.num_stripes == 2


def test_oversized_object_rejected():
    s = _store()
    with pytest.raises(ValueError, match="shard"):
        s.put("huge", b"z" * 2000)


def test_put_overwrites_key():
    s = _store()
    s.put("k", b"old")
    s.put("k", b"new value")
    assert s.get("k") == b"new value"


def test_delete_and_keys():
    s = _store()
    s.put("a", b"1")
    s.put("b", b"2")
    s.delete("a")
    assert s.keys() == ["b"]
    with pytest.raises(KeyError):
        s.get("a")


def test_mark_lost_validates():
    s = _store()
    s.put("a", b"x")
    with pytest.raises(IndexError):
        s.mark_lost(0, 6)


# -- degraded reads and repair ---------------------------------------------------

def test_degraded_read_through_parity():
    s = _store()
    payload = bytes(range(200))
    s.put("obj", payload)
    s.mark_lost(0, 0)  # the block holding the object's head
    assert s.get("obj") == payload
    assert s.stats.degraded_reads == 1


def test_repair_restores_blocks():
    s = _store()
    payload = b"q" * 800
    s.put("obj", payload)
    before = s.blocks_of(0).copy()
    s.mark_lost(0, 1)
    s.mark_lost(0, 4)   # one data + one parity
    assert s.repair(0) == 2
    assert np.array_equal(s.blocks_of(0), before)
    assert s.get("obj") == payload
    assert s.stats.blocks_repaired == 2


def test_repair_too_many_losses_raises():
    s = _store()
    s.put("obj", b"data")
    for b in (0, 1, 2):
        s.mark_lost(0, b)
    with pytest.raises(ValueError, match="data loss"):
        s.repair(0)


def test_repair_all_covers_every_stripe():
    s = _store()
    s.put("a", b"a" * 900)
    s.put("b", b"b" * 900)
    s.mark_lost(0, 0)
    s.mark_lost(1, 3)
    assert s.repair_all() == 2
    assert s.get("a") == b"a" * 900
    assert s.get("b") == b"b" * 900


def test_lrc_store_local_repair_path():
    s = _store(k=4, m=2, lrc_l=2)
    payload = b"local" * 100
    s.put("obj", payload)
    assert s.parity_blocks == 4  # 2 global + 2 local
    s.mark_lost(0, 0)
    s.repair(0)
    assert s.get("obj") == payload


# -- fault injection ---------------------------------------------------------------

def test_bit_flip_is_silent_but_corrupts():
    s = _store()
    s.put("obj", b"sensitive" * 20)
    inj = FaultInjector(s, seed=1)
    ev = inj.bit_flip(stripe=0, block=0)
    assert ev.kind == "bit_flip"
    # the store itself doesn't notice (no lost mark)...
    assert not s._stripes[0].lost
    # ...but the checksum no longer matches
    assert Scrubber(s).locate(0) == [0]


def test_scribble_corrupts_range():
    s = _store()
    s.put("obj", b"\x00" * 800)
    inj = FaultInjector(s, seed=2)
    inj.scribble(stripe=0, block=2, length=32)
    assert Scrubber(s).locate(0) == [2]


def test_device_loss_hits_every_stripe():
    s = _store()
    s.put("a", b"a" * 900)
    s.put("b", b"b" * 900)
    inj = FaultInjector(s, seed=3)
    events = inj.device_loss(1)
    assert len(events) == 2
    assert all(1 in s._stripes[i].lost for i in range(2))
    s.repair_all()
    assert s.get("a") == b"a" * 900


def test_injector_deterministic():
    def run(seed):
        s = _store()
        s.put("obj", b"x" * 500)
        inj = FaultInjector(s, seed=seed)
        inj.bit_flip()
        return inj.events[0]
    assert run(7) == run(7)
    assert run(7) != run(8)


# -- scrubbing -------------------------------------------------------------------

def test_scrub_clean_store():
    s = _store()
    s.put("obj", b"fine")
    report = Scrubber(s).scrub()
    assert report.clean and report.stripes_scanned == 1


def test_scrub_detects_and_repairs_silent_corruption():
    s = _store()
    payload = b"precious data " * 50
    s.put("obj", payload)
    inj = FaultInjector(s, seed=4)
    inj.bit_flip(stripe=0, block=1, nbits=3)
    inj.scribble(stripe=0, block=4, length=16)  # parity corruption too
    report = Scrubber(s).scrub()
    assert set(report.corrupt_blocks) == {(0, 1), (0, 4)}
    assert report.repaired_blocks == 2
    assert s.get("obj") == payload
    assert Scrubber(s).scrub().clean


def test_scrub_reports_unrepairable():
    s = _store()
    s.put("obj", b"doomed")
    inj = FaultInjector(s, seed=5)
    for b in (0, 1, 2):
        inj.bit_flip(stripe=0, block=b)
    report = Scrubber(s).scrub()
    assert report.unrepairable_stripes == [0]
    assert report.repaired_blocks == 0


def test_scrub_without_repair_only_reports():
    s = _store()
    s.put("obj", b"check me" * 10)
    FaultInjector(s, seed=6).bit_flip(stripe=0, block=0)
    report = Scrubber(s).scrub(repair=False)
    assert report.corrupt_blocks == [(0, 0)]
    assert not Scrubber(s).scrub(repair=False).clean  # still corrupt


def test_scrub_counts_mix_of_lost_and_corrupt():
    s = _store()
    s.put("obj", b"mix" * 100)
    s.mark_lost(0, 3)
    FaultInjector(s, seed=7).bit_flip(stripe=0, block=0)
    report = Scrubber(s).scrub()
    assert report.repaired_blocks == 2


# -- performance accounting ----------------------------------------------------------

def test_store_charges_simulated_coding_time():
    lib = DialgaEncoder(4, 2, use_probe=False)
    s = PMStore(4, 2, block_bytes=1024, library=lib)
    s.put("obj", b"timed" * 100)
    assert s.stats.encode_ns > 0
    s.mark_lost(0, 0)
    s.repair(0)
    assert s.stats.decode_ns > 0


def test_store_without_library_charges_nothing():
    s = _store()
    s.put("obj", b"free")
    assert s.stats.encode_ns == 0.0


# -- sharded objects -----------------------------------------------------------

def test_put_get_sharded_roundtrip():
    s = _store()
    big = bytes(range(256)) * 20  # 5120 B > 1024 B stripe capacity
    metas = s.put_sharded("big", big)
    assert len(metas) == 5
    assert s.get_sharded("big") == big


def test_sharded_small_object_single_shard():
    s = _store()
    s.put_sharded("small", b"tiny")
    assert s.get_sharded("small") == b"tiny"


def test_sharded_survives_device_loss():
    s = _store()
    payload = bytes(range(256)) * 16
    s.put_sharded("archive", payload)
    inj = FaultInjector(s, seed=11)
    inj.device_loss(0)
    s.repair_all()
    assert s.get_sharded("archive") == payload


def test_sharded_delete_cascades():
    s = _store()
    s.put_sharded("doomed", b"x" * 3000)
    n_before = len(s.keys())
    s.delete("doomed")
    assert all(not k.startswith("doomed") for k in s.keys())
    assert len(s.keys()) < n_before


def test_sharded_degraded_read():
    s = _store()
    payload = b"sharded and degraded " * 150
    s.put_sharded("obj", payload)
    s.mark_lost(0, 1)
    assert s.get_sharded("obj") == payload
    assert s.stats.degraded_reads >= 1


def test_lrc_repairs_beyond_global_budget_via_local_parity():
    """m=1 global + 2 local parities: two erasures in different groups
    are repairable even though they exceed m."""
    s = _store(k=4, m=1, lrc_l=2, block_bytes=256)
    payload = b"over-budget" * 60
    s.put("obj", payload)
    s.mark_lost(0, 0)   # group 0 data
    s.mark_lost(0, 3)   # group 1 data
    assert s.repair(0) == 2
    assert s.get("obj") == payload


def test_repair_failure_message_mentions_data_loss():
    s = _store()
    s.put("obj", b"gone")
    for b in range(3):
        s.mark_lost(0, b)
    with pytest.raises(ValueError, match="data loss"):
        s.repair(0)
