#!/usr/bin/env python3
"""Scenario: protecting a PM-resident key-value store with LRC.

This is the workload the paper's introduction motivates: a byte-
addressable PM store whose media can flip bits or lose regions, kept
reliable with erasure coding. We use LRC(8, 2, 2) — Azure-style local
reconstruction — so single-block losses repair by reading only one
group, and measure the coding cost on the simulated Optane testbed
under growing concurrency (where DIALGA's adaptive coordinator earns
its keep).

Run:  python examples/pm_kv_store_protection.py
"""

import numpy as np

from repro import DialgaEncoder, HardwareConfig, Workload
from repro.codes import LRCCode, split_blocks

rng = np.random.default_rng(42)

# ------------------------------------------------------------- the store
K, M, L = 8, 2, 2
lrc = LRCCode(K, M, L)
BLOCK = 1024

print(f"LRC({K},{M},{L}): {K} data + {M} global + {L} local parities, "
      f"{BLOCK} B blocks")

# A 'shard' of the KV store: user values packed into one stripe.
values = {f"user:{i}": rng.integers(0, 256, 900, dtype=np.uint8).tobytes()
          for i in range(K)}
stripe_data = np.zeros((K, BLOCK), dtype=np.uint8)
for i, (key, val) in enumerate(values.items()):
    stripe_data[i, :len(val)] = np.frombuffer(val, dtype=np.uint8)

global_parity, local_parity = lrc.encode(stripe_data)
blocks = {i: stripe_data[i] for i in range(K)}
blocks.update({K + i: global_parity[i] for i in range(M)})
blocks.update({K + M + i: local_parity[i] for i in range(L)})

# -------------------------------------------------- failure 1: one block
# A single media failure: local repair touches only the 4-block group.
victim = 2
group = lrc.group_of(victim)
avail = {i: b for i, b in blocks.items() if i != victim}
repaired = lrc.repair_local(group, avail)
assert np.array_equal(repaired, stripe_data[victim])
print(f"single failure (block {victim}): repaired locally from group "
      f"{group} ({lrc.group_size} reads instead of {K})")

# ------------------------------------------- failure 2: correlated burst
# Two blocks of one group plus a local parity: needs the global parities.
erased = [0, 1, K + M]   # both failures in group 0 + its local parity
avail = {i: b for i, b in blocks.items() if i not in erased}
out = lrc.decode(avail, erased)
for e in erased:
    assert np.array_equal(out[e], blocks[e])
print(f"correlated burst {erased}: global decode recovered all blocks")

# ----------------------------------------- coding cost under concurrency
# Front-end write bursts encode stripes concurrently. Watch DIALGA's
# coordinator switch strategy as pressure grows.
hw = HardwareConfig()
print("\nLRC encode throughput on simulated PM (aggregate GB/s):")
print(f"{'threads':>8} {'throughput':>11} {'policy'}")
for nthreads in (1, 4, 8, 16):
    enc = DialgaEncoder(K, M)
    wl = Workload(k=K, m=M, lrc_l=L, block_bytes=BLOCK, nthreads=nthreads,
                  data_bytes_per_thread=96 * 1024)
    res = enc.run(wl, hw)
    print(f"{nthreads:>8} {res.throughput_gbps:>9.2f}   "
          f"{enc.policy_log[-1].describe()}")
print("\nNote the switch to the shuffled/XPLine high-pressure strategy "
      "once the thread count crosses the coordinator's threshold.")
