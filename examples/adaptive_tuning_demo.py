#!/usr/bin/env python3
"""Inside DIALGA: watch the coordinator, climber and operator work.

Peels the lid off the §4 machinery on the simulated testbed:

1. the hill climber searching the software-prefetch distance,
2. the static shuffle mapping silencing the L2 streamer,
3. the PMU-threshold logic switching policy when pressure appears.

Run:  python examples/adaptive_tuning_demo.py
"""

from repro import DialgaConfig, DialgaEncoder, HardwareConfig, Workload
from repro.core import (
    AdaptiveCoordinator, HillClimber, eq1_max_distance,
    static_shuffle_mapping, thrash_thread_bound,
)
from repro.core.policy import Policy
from repro.simulator import simulate
from repro.trace import IsalVariant, isal_trace

hw = HardwareConfig()
K, M = 24, 4
wl = Workload(k=K, m=M, block_bytes=1024, data_bytes_per_thread=96 * 1024)

# ----------------------------------------------- 1. the distance search
print("1. hill-climbing the software-prefetch distance (paper §4.1.2)")
enc = DialgaEncoder(K, M)
probe, _policy_probe = enc._make_probe(wl, hw)
evals: dict[int, float] = {}


def traced_probe(d: int) -> float:
    evals[d] = probe(d)
    return evals[d]


climber = HillClimber(traced_probe, lower=1, upper=8 * K, neighborhood=16)
best_d, best_val = climber.search(start=K)
print(f"   start d=k={K}; {climber.evaluations} probe evaluations")
print(f"   best d={best_d} ({best_val:.3f} ns/B; "
      f"d={K} scored {evals.get(K, float('nan')):.3f})")

# ----------------------------------------------- 2. the shuffle mapping
print("\n2. static shuffle mapping as a prefetcher off-switch (§4.2.2)")
order = static_shuffle_mapping(16)
print(f"   16-line block row order: {order}")
for shuffle in (False, True):
    tr = isal_trace(wl, hw.cpu, IsalVariant(shuffle=shuffle))
    res = simulate([tr], hw)
    state = "shuffled" if shuffle else "natural "
    print(f"   {state} order: {res.counters.hwpf_issued:6d} HW prefetches, "
          f"{res.throughput_gbps:.2f} GB/s")

# ------------------------------------- 3. threshold-driven adaptation
print("\n3. the coordinator's initial decisions (§4.1.2)")
for nthreads in (1, 8, 16):
    coord = AdaptiveCoordinator(wl.with_(nthreads=nthreads), hw)
    print(f"   {nthreads:2d} threads -> {coord.policy.describe()}")
bound = thrash_thread_bound(K, hw.pm)
cap = eq1_max_distance(16, K, M, hw.pm)
print(f"   (read buffer sustains ~{bound} x {K}-stream thread sets; "
      f"Eq.(1) caps d at {cap} for 16 threads)")

print("\n4. live policy switching under pressure (sampled PMU thresholds)")
enc16 = DialgaEncoder(K, M, config=DialgaConfig(chunks=6))
res = enc16.run(wl.with_(nthreads=14, data_bytes_per_thread=48 * 1024), hw)
for i, pol in enumerate(enc16.policy_log):
    print(f"   chunk {i}: {pol.describe()}")
print(f"   -> {res.throughput_gbps:.2f} GB/s aggregate, media amplification "
      f"{res.sim.counters.media_read_amplification:.2f}")
