#!/usr/bin/env python3
"""Scenario: a reliability drill on an erasure-coded PM store.

Exercises the full reliability loop the paper's introduction motivates
(§1-2): silent media bit flips, software scribbles and a whole-device
loss hit an object store protected by RS(6+3); checksum scrubbing
converts silent corruption into erasures; parity repairs everything;
and the coding work is costed on the simulated Optane testbed through
DIALGA.

Run:  python examples/fault_tolerance_drill.py
"""

import numpy as np

from repro import DialgaConfig, DialgaEncoder
from repro.pmstore import FaultInjector, PMStore, Scrubber

rng = np.random.default_rng(2026)

# ----------------------------------------------------------- build store
K, M, BLOCK = 6, 3, 1024
store = PMStore(K, M, block_bytes=BLOCK,
                library=DialgaEncoder(K, M,
                                      config=DialgaConfig(use_probe=False)))
print(f"PM store: RS({K + M},{K}), {BLOCK} B blocks, "
      f"{M / K:.0%} space overhead, per-block CRC32\n")

originals = {}
for i in range(24):
    key = f"record/{i:03d}"
    value = rng.integers(0, 256, int(rng.integers(200, 1400)),
                         dtype=np.uint8).tobytes()
    originals[key] = value
    store.put(key, value)
print(f"stored {len(originals)} objects across {store.num_stripes} stripes "
      f"({store.stats.bytes_written} B)")

# ------------------------------------------------------------ the drill
inj = FaultInjector(store, seed=99)
print("\ninjecting faults:")
for _ in range(4):
    ev = inj.bit_flip(nbits=2)
    print(f"  silent bit flips   stripe {ev.stripe} block {ev.block}")
ev = inj.scribble(length=128)
print(f"  software scribble  stripe {ev.stripe} block {ev.block} ({ev.detail})")
events = inj.device_loss(2)
print(f"  device loss        block position 2 of all {len(events)} stripes")

# Degraded reads still work through parity while damage is outstanding.
probe = "record/000"
assert store.get(probe) == originals[probe]
print(f"\ndegraded read of {probe!r}: OK "
      f"({store.stats.degraded_reads} parity-path reads so far)")

# ------------------------------------------------------------- scrub/repair
report = Scrubber(store).scrub()
print("\nscrub pass:")
print(f"  stripes scanned      {report.stripes_scanned}")
print(f"  corrupt blocks found {len(report.corrupt_blocks)} "
      f"{report.corrupt_blocks}")
print(f"  blocks repaired      {report.repaired_blocks}")
print(f"  unrepairable stripes {report.unrepairable_stripes or 'none'}")

survivors = sum(store.get(k) == v for k, v in originals.items())
print(f"\nverification: {survivors}/{len(originals)} objects bit-exact")
assert survivors == len(originals)
assert Scrubber(store).scrub().clean

# ------------------------------------------------------------ cost ledger
st = store.stats
print("\nsimulated coding cost (DIALGA on the Optane testbed):")
print(f"  encode: {st.encode_ns / 1e3:8.1f} us over {st.puts} puts")
print(f"  decode: {st.decode_ns / 1e3:8.1f} us over {st.repairs} repairs "
      f"+ degraded reads")
