#!/usr/bin/env python3
"""Scenario: record a trace of an adaptive run and explore it inline.

Replays a small mixed workload — a DIALGA adaptive encode that drives
the coordinator through a live policy switch, followed by a burst of
service traffic — onto a :class:`repro.obs.Tracer`, then explores the
recorded timeline without leaving the terminal: the span tree, per-name
aggregates, the coordinator's decision log, and the per-request stage
breakdown. Finishes by writing both exporter formats so the same trace
can be opened in Perfetto / ``chrome://tracing``.

Run:  python examples/trace_explorer_demo.py
"""

import tempfile
from pathlib import Path

from repro import DialgaConfig, DialgaEncoder, Workload
from repro.obs import (
    Tracer,
    aggregate_by_name,
    assert_well_formed,
    render_span_tree,
    service_stage_breakdown,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from repro.service import ErasureCodingService, ServiceConfig, put_wave
from repro.service.request import Request

K, M, BLOCK = 8, 4, 1024

tracer = Tracer("trace_explorer")
with use_tracer(tracer):
    # ---------------------------------------------- 1. adaptive encode
    # 10 threads on RS(12,8) sits just under the Eq. (1) comfort zone:
    # chunk 0 runs low-pressure, the counters flag contention +
    # inefficiency, and the coordinator switches mid-job (visible as a
    # coordinator.policy_switch event between sim.chunk spans).
    lib = DialgaEncoder(K, M, config=DialgaConfig(use_probe=False, chunks=6))
    wl = Workload(k=K, m=M, block_bytes=BLOCK, nthreads=10,
                  data_bytes_per_thread=160 * K * BLOCK // 10)
    lib.run(wl)

    # ---------------------------------------------- 2. service traffic
    svc = ErasureCodingService(
        K, M, block_bytes=BLOCK,
        config=ServiceConfig(max_queue_depth=12, max_batch=8))
    svc.submit(Request.encode(stripes=32, arrival_ns=0.0))
    svc.submit_many(put_wave(6, 2, payload_bytes=BLOCK,
                             mean_gap_ns=2_000.0, seed=3))
    results = svc.drain()

assert_well_formed(tracer)
assert all(r.ok for r in results), "a service request failed"
assert tracer.find_events("coordinator.policy_switch"), \
    "the adaptive run recorded no policy switch"

# ------------------------------------------------------ 3. explore it
print(f"recorded {len(tracer.spans)} spans / {len(tracer.events)} events "
      f"over {tracer.max_ts / 1e3:.1f} simulated us\n")

print("span tree (truncated):")
print(render_span_tree(tracer, max_children=4, max_depth=2))

print("\nwhere the time went (per span name):")
for name, agg in sorted(aggregate_by_name(tracer).items(),
                        key=lambda kv: -kv[1]["total_ns"]):
    print(f"  {agg['total_ns'] / 1e3:10.1f} us  {name:<18} "
          f"x{agg['count']:<4} (mean {agg['mean_ns'] / 1e3:.1f} us)")

print("\ncoordinator decision log:")
for e in tracer.find_events("coordinator.policy_switch"):
    print(f"  t={e.ts_ns / 1e3:9.1f} us  switch: {e.attrs['old']} -> "
          f"{e.attrs['new']} (contention={e.attrs['contention']}, "
          f"inefficient={e.attrs['inefficient']})")

print("\nservice request stages (from spans):")
for stage, values in service_stage_breakdown(tracer).items():
    mean = sum(values) / len(values) if values else 0.0
    print(f"  {stage:<10} n={len(values):<3} mean={mean / 1e3:8.1f} us")

# ------------------------------------------------------ 4. export it
out = Path(tempfile.mkdtemp(prefix="repro_trace_"))
chrome = write_chrome_trace(tracer, out / "trace.json")
jsonl = write_jsonl(tracer, out / "trace.jsonl")
print(f"\nwrote {chrome} (open in Perfetto / chrome://tracing)")
print(f"wrote {jsonl} (grep-able span log)")
