#!/usr/bin/env python3
"""Scenario: wide-stripe archival encoding (VAST-style RS(52, 48)).

Archival systems push stripe width up (the paper cites VAST at k=154)
to cut space overhead: RS(52,48) stores only 8.3% redundancy. But wide
stripes overrun the L2 streamer's 32-stream tracking capacity, so on PM
the hardware prefetcher silently gives up and plain ISA-L collapses
(Obs. 3 / Fig. 10). This example reproduces that collapse and shows the
three escape hatches: Cerasure-style decomposition, ISA-L-D, and
DIALGA's stream-count-independent software prefetching.

Run:  python examples/wide_stripe_archive.py
"""

import numpy as np

from repro import (
    Cerasure, DialgaEncoder, HardwareConfig, ISAL, ISALDecompose,
    UnsupportedWorkload, Workload, Zerasure,
)

K, M = 48, 4
BLOCK = 1024
hw = HardwareConfig()
rng = np.random.default_rng(7)

print(f"wide-stripe archival code RS({K + M},{K}): "
      f"{M / K:.1%} space overhead\n")

# ------------------------------------------------------ verify the codes
data = rng.integers(0, 256, (K, BLOCK)).astype(np.uint8)
libraries = [ISAL(K, M), ISALDecompose(K, M), Cerasure(K, M),
             DialgaEncoder(K, M)]
reference = libraries[0].encode(data)
for lib in libraries[:2] + [libraries[3]]:
    assert np.array_equal(lib.encode(data), reference)
print("functional check: ISA-L, ISA-L-D and DIALGA parities are "
      "byte-identical; Cerasure uses its own (equally MDS) matrix")

# Repair a worst-case burst of M erasures through DIALGA.
erased = sorted(rng.choice(K + M, size=M, replace=False).tolist())
blocks = {i: data[i] for i in range(K)}
blocks.update({K + i: reference[i] for i in range(M)})
out = libraries[3].decode(
    {i: b for i, b in blocks.items() if i not in erased}, erased)
assert all(np.array_equal(out[e], blocks[e]) for e in erased)
print(f"repaired a {M}-erasure burst {erased}\n")

# ----------------------------------------------------- the streamer wall
wl = Workload(k=K, m=M, block_bytes=BLOCK, data_bytes_per_thread=192 * 1024)
print(f"{'library':>10} {'GB/s':>6}  note")
for lib in (ISAL(K, M), ISALDecompose(K, M), Zerasure(K, M),
            Cerasure(K, M), DialgaEncoder(K, M)):
    try:
        res = lib.run(wl, hw)
        note = {
            "ISA-L": "streamer over capacity -> no prefetch at all",
            "ISA-L-D": "decompose re-engages the streamer, pays parity reload",
            "Cerasure": "XOR schedule + decompose (AVX256 only)",
            "DIALGA": "software prefetch needs no stream tracking",
        }.get(lib.name, "")
        print(f"{lib.name:>10} {res.throughput_gbps:>6.2f}  {note}")
    except UnsupportedWorkload:
        print(f"{lib.name:>10} {'n/a':>6}  matrix search does not converge "
              "at this width (paper: 'missing results')")

# ----------------------------------------- how narrow should you shard?
print("\nthroughput if the archive sharded the same data into narrower "
      "stripes (ISA-L vs DIALGA):")
print(f"{'k':>4} {'overhead':>9} {'ISA-L':>7} {'DIALGA':>7}")
for k in (12, 24, 32, 48):
    wl_k = Workload(k=k, m=M, block_bytes=BLOCK,
                    data_bytes_per_thread=128 * 1024)
    isal = ISAL(k, M).run(wl_k, hw).throughput_gbps
    dialga = DialgaEncoder(k, M).run(wl_k, hw).throughput_gbps
    print(f"{k:>4} {M / k:>8.1%} {isal:>7.2f} {dialga:>7.2f}")
print("\nWith DIALGA, the throughput penalty for wide stripes largely "
      "disappears — you can have the 8% overhead *and* the bandwidth.")
