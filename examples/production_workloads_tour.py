#!/usr/bin/env python3
"""Tour: which coding library wins on real production workload shapes?

Sweeps the named production presets (Facebook f4, Azure LRC, Ceph
defaults, VAST wide stripes, a PM KV write burst, a degraded-read
storm) through the full library comparison on the simulated Optane
testbed — the three-line API a downstream user starts from.

Run:  python examples/production_workloads_tour.py
"""

from repro.bench import PRODUCTION_WORKLOADS, compare_libraries

VOLUME = 64 * 1024  # per-point simulated volume (keep the tour quick)

for name, (description, wl) in PRODUCTION_WORKLOADS.items():
    wl = wl.with_(data_bytes_per_thread=VOLUME)
    include = ("ISA-L", "ISA-L-D", "DIALGA") if wl.k > 32 or wl.lrc_l \
        else ("ISA-L", "ISA-L-D", "Zerasure", "Cerasure", "DIALGA")
    print(f"=== {name}: {description}")
    comparison = compare_libraries(wl, include=include)
    print(comparison)
    speedup = comparison.speedup_over("ISA-L")["DIALGA"]
    print(f"    DIALGA vs ISA-L: x{speedup:.2f}\n")

print("Takeaway: the win grows exactly where the paper predicts — small "
      "blocks,\nwide stripes and high concurrency; at 4 KB blocks with "
      "narrow stripes the\nhardware prefetcher already does most of the work.")
