#!/usr/bin/env python3
"""Pull the plug on the store and watch the WAL put it back together.

The PM store's durability unit is the persistence domain: a write is
volatile until its cache lines are flushed (clwb) *and* fenced
(sfence). Every mutation is therefore a redo-logged transaction —
intent record, in-place stripe lines, commit record — so that a power
cut at ANY flush/fence boundary recovers to a consistent committed
state. This demo shows the machinery at three zoom levels:

1. the raw persistence domain: visible-but-volatile writes, tearing,
2. a put cut mid-transaction, recovered by WAL replay,
3. the crash-point harness enumerating every boundary of a scenario.

Run:  python examples/crash_recovery_demo.py
"""

import numpy as np

from repro.crash import CrashInjector, PowerCut, smoke_scenario
from repro.crash.injector import _Boundary
from repro.pmstore import PersistenceDomain, PMStore, seeded_line_policy

# ------------------------------------ 1. the persistence-domain model
print("1. writes are visible immediately but volatile until fenced\n")

dom = PersistenceDomain(4096)
dom.write(0, b"hello, pmem")
print(f"   after write:          read back {dom.view(0, 11).tobytes()!r}, "
      f"{dom.pending_lines} line pending")
dom.crash()
print(f"   after power cut:      read back {dom.view(0, 11).tobytes()!r}")
dom.write(0, b"hello, pmem")
dom.persist(0, 11)            # clwb each line + sfence
dom.crash()
print(f"   flushed+fenced first: read back {dom.view(0, 11).tobytes()!r}\n")

# ------------------------------------ 2. a put cut mid-transaction
print("2. cut a put between its parity write and its commit record\n")

store = PMStore(3, 2, block_bytes=256,
                pm_capacity_bytes=1 << 20, wal_capacity_bytes=1 << 20)
store.put("acked", b"\xAB" * 500)                      # survives: committed

boundary = _Boundary(target=8)                         # 8th flush/fence op
store.domain.persist_hooks.append(boundary)
store.wal.domain.persist_hooks.append(boundary)
try:
    store.put("torn", b"\xCD" * 500)                   # never acked
except PowerCut:
    print("   PowerCut raised mid-put (boundary #8)")

damaged = store.crash(seeded_line_policy(np.random.default_rng(0)))
print(f"   crash tore/dropped {damaged} store-buffer lines")
report = store.recover()
print(f"   recovery: {report.summary()}")
print(f"   keys after recovery: {store.keys()}  "
      f"(acked survived, torn rolled {'forward' if 'torn' in store.keys() else 'back'})")
assert store.get("acked") == b"\xAB" * 500
d1 = store.state_digest()
store.recover()
assert store.state_digest() == d1                      # replay is idempotent
print("   second recover() is a byte-identical no-op\n")

# ------------------------------------ 3. the exhaustive harness
print("3. enumerate EVERY boundary of the smoke scenario (+ tearing)\n")

injector = CrashInjector(smoke_scenario(0))
report = injector.enumerate_all()
tears = injector.tear_points(10, seed=0)
print(f"   {report.summary()}")
print(f"   {tears.summary()}")
assert report.all_passed and tears.all_passed
print("\nevery acknowledged write survived every possible crash point.")
