#!/usr/bin/env python3
"""Break the service on purpose and watch it heal itself.

A chaos campaign is a timed fault schedule replayed on the simulated
clock against a running :class:`~repro.service.ErasureCodingService`
with a :class:`~repro.service.SelfHealer` attached:

1. seeded base traffic puts objects and reads them back,
2. scheduled actions corrupt, erase and storm at exact instants,
3. the health monitor trips a circuit breaker per failing device,
4. repairs and scrub slices run in idle gaps under the Eq. (1) cap,
5. a durability auditor proves no acknowledged byte was lost.

Run:  python examples/chaos_campaign_demo.py
"""

from repro.chaos import (
    CANNED_CAMPAIGNS, Campaign, CampaignEngine, ChaosAction,
)

# ------------------------------------------ 1. a hand-rolled campaign
print("1. a custom campaign: lose a device, scribble on a stripe,")
print("   then read everything back while the healer works\n")

campaign = Campaign(
    name="demo_mixed_failure",
    description="device loss + wild write under read traffic",
    seed=42,
    k=4, m=3, block_bytes=512,
    duration_ns=8e7,
    base_clients=4, objects_per_client=3,
    actions=(
        ChaosAction(at_ns=2e7, kind="device_loss", device=0,
                    note="device 0 dies"),
        ChaosAction(at_ns=3e7, kind="scribble", count=2, length=128,
                    note="firmware scribbles on two blocks"),
        ChaosAction(at_ns=4e7, kind="traffic_burst", op="get",
                    nclients=4, objects_per_client=3,
                    note="clients read through the damage"),
    ),
)
report = CampaignEngine(campaign).run()
print(report.render())

# ------------------------------------------ 2. the canned acceptance run
print("\n2. the canned kitchen-sink campaign (the acceptance bar:")
print("   device loss + corruption wave + retry storm, still CLEAN)\n")

sink = CANNED_CAMPAIGNS["kitchen_sink"](seed=0)
sink_report = CampaignEngine(sink).run()
print(sink_report.render())

# ------------------------------------------ 3. the verdicts that matter
print("\n3. verdicts")
for r in (report, sink_report):
    mttr_ms = r.mean_mttr_ns / 1e6
    print(f"   {r.name:<20} availability={r.availability:.4f}  "
          f"MTTR={mttr_ms:.2f}ms  durability "
          f"{'CLEAN' if r.durability_clean else 'DIRTY'}")
assert report.durability_clean and sink_report.durability_clean
print("\nno acknowledged byte was lost or silently served corrupt.")
