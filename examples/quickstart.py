#!/usr/bin/env python3
"""Quickstart: erasure-code real data with DIALGA and measure it.

Covers the whole public API surface in ~60 lines:

1. bit-exact encode/decode of real bytes (the functional path), and
2. a simulated-testbed performance run (the paper's measurement path).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DialgaEncoder, HardwareConfig, ISAL, Workload
from repro.codes import split_blocks, join_blocks

# ---------------------------------------------------------------- encode
# RS(12, 8) in the paper's notation: k=8 data blocks, m=4 parity blocks.
K, M = 8, 4
encoder = DialgaEncoder(k=K, m=M)

payload = b"Persistent memory needs protection! " * 2000
data = split_blocks(payload, K)              # (k, block_len) uint8 matrix
parity = encoder.encode(data)                # (m, block_len) parity
print(f"encoded {len(payload)} B into {K}+{M} blocks of {data.shape[1]} B")

# ---------------------------------------------------------------- corrupt
# Lose two data blocks and one parity block (any <= m erasures repair).
blocks = {i: data[i] for i in range(K)}
blocks.update({K + i: parity[i] for i in range(M)})
erased = [1, 6, K + 2]
survivors = {i: b for i, b in blocks.items() if i not in erased}
print(f"erased blocks {erased}; {len(survivors)} survivors remain")

# ---------------------------------------------------------------- repair
recovered = encoder.decode(survivors, erased)
data_fixed = data.copy()
for e in erased:
    if e < K:
        data_fixed[e] = recovered[e]
assert join_blocks(data_fixed, len(payload)) == payload
print("repair OK: payload reconstructed bit-exactly")

# ------------------------------------------------------- performance run
# The simulated Optane testbed (DESIGN.md): compare DIALGA against ISA-L
# on the paper's default workload (1 KB blocks, single thread).
wl = Workload(k=K, m=M, block_bytes=1024, data_bytes_per_thread=256 * 1024)
hw = HardwareConfig()

isal = ISAL(K, M).run(wl, hw)
dialga = encoder.run(wl, hw)
policy = encoder.policy_log[-1]

print(f"\nsimulated PM encode throughput ({wl.block_bytes} B blocks):")
print(f"  ISA-L : {isal.throughput_gbps:5.2f} GB/s")
print(f"  DIALGA: {dialga.throughput_gbps:5.2f} GB/s "
      f"({dialga.throughput_gbps / isal.throughput_gbps - 1:+.0%})")
print(f"  DIALGA policy: {policy.describe()}")
print(f"  (hill-climbed software-prefetch distance d={policy.sw_distance})")
