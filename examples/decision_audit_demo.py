#!/usr/bin/env python3
"""Audit the coordinator: every decision's evidence, then its regret.

Runs one high-pressure adaptive encode (the fig-10 regime where the
§4.1.2 thresholds fire), then:

1. pulls the full decision ledger off the coordinator — per decision:
   the counter deltas it saw, every threshold predicate it evaluated,
   the candidate policies it weighed, and what it chose;
2. replays every decision window under every candidate policy through
   the cached ``repro.simulate()`` facade (the counterfactual oracle)
   and prints per-decision regret plus the episode's
   oracle-normalized score;
3. appends the episode's score to a benchmark history ledger and runs
   the rolling-baseline regression check over it.

Run:  python examples/decision_audit_demo.py
"""

import os
import tempfile

from repro import DialgaConfig, DialgaEncoder, HardwareConfig, Workload
from repro.obs import (
    BenchHistory,
    detect_regressions,
    ledger_from_coordinator,
    replay_decisions,
)

hw = HardwareConfig()
wl = Workload(k=8, m=4, block_bytes=1024, nthreads=10)
wl = wl.with_(data_bytes_per_thread=120 * wl.stripe_data_bytes)

# ------------------------------------------- 1. the evidence trail
print("1. high-pressure adaptive encode (10 threads, k=8, m=4)")
enc = DialgaEncoder(8, 4, config=DialgaConfig(use_probe=False, chunks=6))
res = enc.run(wl, hw)
print(f"   {res.sim.data_bytes / res.sim.makespan_ns:.3f} GB/s, "
      f"{enc.policy_switches} policy switch(es)\n")

ledger = ledger_from_coordinator(enc.last_coordinator)
print(ledger.render())
switch = ledger.switches[0]
print("\n   the switch decision in full:")
for check in switch.checks:
    mark = "FIRED" if check["fired"] else "quiet"
    print(f"     {check['name']:<12} value={check['value']:10.4f}  "
          f"limit={check['limit']:10.4f}  [{mark}]")
print(f"     candidates: "
      f"{' | '.join(p.describe() for p in switch.candidates)}")
print(f"     chose: {switch.chosen.describe()}\n")

# ------------------------------------------- 2. the counterfactual oracle
print("2. replaying every decision window under every candidate")
report = replay_decisions(ledger)
print(report.render())
print(f"   (replay cache: {report.cache_stats['hits']} hits, "
      f"{report.cache_stats['misses']} misses — candidate windows "
      "recur, so the oracle is nearly free)\n")

# ------------------------------------------- 3. the regression gate
print("3. the perf trajectory: history ledger + rolling-baseline gate")
with tempfile.TemporaryDirectory() as tmp:
    history = BenchHistory(os.path.join(tmp, "BENCH_history.jsonl"))
    for run in range(3):  # three healthy runs seed the baseline
        history.append("demo:audit", {
            "oracle_score": report.oracle_score,
            "regret_ns_per_byte": report.total_regret_ns_per_byte})
    print("   " + detect_regressions(history).render().replace("\n", "\n   "))
    # Inject a slowdown: the gate speaks the coordinator's language.
    history.append("demo:audit", {
        "oracle_score": report.oracle_score / 2.0,
        "regret_ns_per_byte": report.total_regret_ns_per_byte})
    gated = detect_regressions(history)
    print("   after an injected 2x oracle-score drop:")
    print("   " + gated.render().replace("\n", "\n   "))
    assert not gated.clean
print("\ndone: decisions audited, regret scored, trajectory gated")
