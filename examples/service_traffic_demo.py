#!/usr/bin/env python3
"""Scenario: traffic replay against the concurrent EC service.

Replays a burst of 36 simulated clients against
:class:`repro.service.ErasureCodingService` — the paper's Eq. (1)
read-buffer bound acting as the admission cap, same-geometry requests
coalesced into single simulated encode jobs, transient device faults
absorbed by retry, and a device loss mid-run answered with degraded
(parity-reconstructed) reads. Ends with the service's metrics snapshot
rendered in Prometheus exposition format (``repro.obs.prometheus_text``).

Run:  python examples/service_traffic_demo.py
"""

from repro import DialgaConfig, DialgaEncoder
from repro.obs import prometheus_text
from repro.pmstore import FaultInjector
from repro.service import (
    ErasureCodingService,
    ServiceConfig,
    get_wave,
    put_wave,
)

K, M, BLOCK = 8, 4, 1024
NCLIENTS, OBJECTS = 36, 2

# ------------------------------------------------------- build the service
svc = ErasureCodingService(
    K, M, block_bytes=BLOCK,
    library=DialgaEncoder(K, M, config=DialgaConfig(use_probe=False,
                                                    chunks=2)),
    config=ServiceConfig(max_queue_depth=12, max_batch=8))
print(f"EC service: RS({K + M},{K}), {BLOCK} B blocks")
print(f"Eq. (1) admission cap: {svc.admission.capacity_threads} concurrent "
      f"threads\n  (nthreads * k * 256B * ceil(d_max/(k+m)) <= "
      f"{svc.hw.pm.read_buffer_kb} KB read buffer)\n")

inj = FaultInjector(svc.store, seed=7)
svc.store.add_fault_hook(inj.transient_hook(rate=0.3,
                                            max_failures_per_key=2))

# ------------------------------------------------------------- put wave
print(f"1. {NCLIENTS} clients write {OBJECTS} objects each "
      "(transient faults injected at 30%)")
svc.submit_many(put_wave(NCLIENTS, OBJECTS, payload_bytes=BLOCK,
                         mean_gap_ns=2_000.0, seed=11))
put_results = svc.drain()
admitted = [r for r in put_results if r.status.value != "rejected"]
rejected = [r for r in put_results if r.status.value == "rejected"]
print(f"   {len(admitted)} admitted (all completed: "
      f"{all(r.ok for r in admitted)}), {len(rejected)} shed at the cap, "
      f"{svc.metrics.count('retries')} retries absorbed "
      f"{svc.metrics.count('faults_transient')} faults")

# Rejections must be Eq.(1)-cap overflow, never a spurious queue bounce.
assert all(r.ok for r in admitted), "an admitted put failed"
assert svc.metrics.count("rejected_below_cap") == 0, \
    "rejected a request while below the Eq. (1) cap"

# ------------------------------------------------- device loss + get wave
stored = {r.request.key for r in admitted}
lost = svc.store.mark_device_lost(2)
print(f"\n2. device 2 dies ({lost} stripes degraded); "
      "clients read everything back")
svc.submit_many(r for r in get_wave(NCLIENTS, OBJECTS,
                                    start_ns=svc.clock_ns + 1e4, seed=12)
                if r.key in stored)
get_results = svc.drain()
degraded = [r for r in get_results if r.degraded]
print(f"   {len(get_results)} reads, {len(degraded)} served degraded via "
      f"RS reconstruction, 0 failed: {all(r.ok for r in get_results)}")

assert all(r.ok for r in get_results), "a read failed after device loss"
assert degraded, "device loss produced no degraded reads"

# ------------------------------------------------------------- metrics
print("\n3. final metrics snapshot (Prometheus exposition format)")
snapshot = svc.metrics.snapshot()
assert snapshot["counters"], "metrics snapshot is empty"
print(prometheus_text(svc.metrics), end="")
print(f"\ncoalescing: {svc.metrics.count('coalesced_requests')} requests "
      f"rode along in {svc.metrics.count('batches')} batches "
      f"(max batch {svc.config.max_batch}); simulated makespan "
      f"{svc.clock_ns / 1e6:.2f} ms")
